"""Experiment harness: run a workload mix under a policy, collect metrics.

The harness mirrors the paper's methodology:

1. FG tasks are pinned one per core starting at core 0 (lowest niceness);
   BG tasks fill the remaining cores (highest niceness); the Dirigent
   runtime is pinned to a core shared with a BG task.
2. Each FG benchmark's deadline is ``mu + 0.3 sigma`` of its completion
   time under the **Baseline** configuration (free contention, all cores
   at maximum frequency).
3. FG metrics are computed over ``executions`` completions per FG task
   after a warmup; BG performance is total BG instructions per second
   over the same measurement window, normalized to Baseline.

Baseline runs, offline profiles, and static-partition sweeps are cached
per (mix, machine-config) so figure drivers can share them.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import BASELINE, Policy
from repro.core.profile import ExecutionProfile, OfflineProfiler
from repro.core.runtime import (
    DirigentRuntime,
    ManagedTask,
    PredictionRecord,
    RuntimeOptions,
)
from repro.errors import ExperimentError
from repro.experiments.diskcache import get_cache
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultReport,
    FaultySystem,
)
from repro.experiments.metrics import (
    DEADLINE_SIGMA_FACTOR,
    DurationStats,
    deadline_for,
    duration_stats,
    success_ratio,
)
from repro.experiments.mixes import Mix
from repro.sim.batch import BACKEND_VECTOR, resolve_backend
from repro.sim.config import MachineConfig, default_executions
from repro.sim.vector import MultiCell
from repro.sim.counters import CounterSnapshot
from repro.sim.machine import Machine
from repro.sim.process import ExecutionRecord, Process
from repro.workloads.catalog import get_rotate_pair, get_workload
from repro.workloads.rotate import spawn_rotating_background

# The default execution count comes from
# repro.sim.config.default_executions(), which re-reads REPRO_EXECUTIONS
# on every call: harness entry points take ``executions=None`` and
# resolve it at call time, so sweep workers and tests observe
# environment changes made after import (the old import-time module
# constant froze the variable's value at first import).

#: Executions discarded before measurement begins.
DEFAULT_WARMUP = 5

#: Ticks between bookkeeping checks while driving a session; the
#: machine advances in blocks of this size through the batched engine.
DRIVE_BLOCK_TICKS = 32

# All result caches (in memory and on disk) fold the active simulation
# backend into their keys, so results produced by one backend are never
# served to a run under the other.

#: Machine-readable registry of the disk-cache namespaces this module
#: writes and the identifiers every key tuple for each namespace must
#: fold in.  ``repro lint``'s ``COV003`` cross-checks it against the
#: actual ``disk.get``/``disk.put`` call sites: an undeclared
#: namespace, a declared-but-unused one, and a key tuple missing a
#: required identifier are all errors — so a new result-relevant
#: parameter cannot silently stay out of a cache key.  The symbol
#: ``backend`` also matches a direct ``resolve_backend()`` call inside
#: the tuple (the two spellings are the same value by construction).
CACHE_KEY_FIELDS = {
    "profile": ("fg_name", "config", "sampling_period_s", "backend"),
    "baseline": ("mix", "config", "executions", "warmup", "seed",
                 "backend"),
    "standalone": ("fg_name", "config", "executions", "warmup", "seed",
                   "backend"),
    "partition": ("mix", "config", "seed", "candidates", "executions",
                  "warmup", "knee_tolerance", "backend"),
    "run": ("mix", "policy", "executions", "warmup", "config", "seed",
            "backend"),
}

_PROFILE_CACHE: Dict[
    Tuple[str, MachineConfig, float, str], ExecutionProfile
] = {}
_BASELINE_CACHE: Dict[
    Tuple[str, MachineConfig, int, int, int, str], "RunResult"
] = {}
_PARTITION_CACHE: Dict[Tuple[str, MachineConfig, int, str], int] = {}


@dataclass(frozen=True)
class RunResult:
    """Outcome of running one mix under one policy.

    Attributes:
        mix: The workload mix.
        policy_name: Name of the policy that ran.
        deadlines_s: Deadline per FG task (same benchmark => same value).
        durations_s: Measured execution times per FG task, post-warmup.
        bg_instr_per_s: BG instructions per second in the measurement
            window.
        elapsed_s: Length of the measurement window.
        fg_instr: FG instructions retired in the window (all FG cores).
        fg_misses: FG LLC misses in the window.
        bg_misses: BG LLC misses in the window.
        bg_instr: BG instructions in the window.
        prediction_logs: Midpoint prediction records per FG task (empty
            unless a runtime with prediction recording ran).
        bg_grade_histogram: Histogram of BG core DVFS grades sampled by
            the runtime (empty without a runtime).
        partition_history: FG partition sizes chosen by the coarse
            controller over time (empty without coarse control).
        fault_report: Fault-injection and degradation accounting; only
            present when the run executed under a ``FaultPlan``.
    """

    mix: Mix
    policy_name: str
    deadlines_s: Tuple[float, ...]
    durations_s: Tuple[Tuple[float, ...], ...]
    bg_instr_per_s: float
    elapsed_s: float
    fg_instr: float
    fg_misses: float
    bg_misses: float
    bg_instr: float
    prediction_logs: Tuple[Tuple[PredictionRecord, ...], ...] = ()
    bg_grade_histogram: Dict[int, int] = field(default_factory=dict)
    partition_history: Tuple[int, ...] = ()
    fault_report: Optional[FaultReport] = None

    @property
    def all_durations(self) -> List[float]:
        """Execution times pooled over all FG tasks."""
        return [d for task in self.durations_s for d in task]

    @property
    def fg_stats(self) -> DurationStats:
        """Duration statistics pooled over all FG tasks."""
        return duration_stats(self.all_durations)

    @property
    def fg_success_ratio(self) -> float:
        """Fraction of FG executions meeting their task's deadline."""
        total = 0
        met = 0
        for deadline, durations in zip(self.deadlines_s, self.durations_s):
            total += len(durations)
            met += sum(1 for d in durations if d <= deadline)
        if total == 0:
            raise ExperimentError("run produced no measured executions")
        return met / total

    @property
    def fg_mpki(self) -> float:
        """FG misses per kilo-instruction over the window."""
        if self.fg_instr <= 0:
            return 0.0
        return self.fg_misses / self.fg_instr * 1000.0


def fg_cores_of(mix: Mix, config: MachineConfig) -> List[int]:
    """Cores assigned to FG tasks (0 .. fg_count-1)."""
    if mix.fg_count >= config.num_cores:
        raise ExperimentError(
            "mix %r needs at least one BG core on a %d-core machine"
            % (mix.name, config.num_cores)
        )
    return list(range(mix.fg_count))


def bg_cores_of(mix: Mix, config: MachineConfig) -> List[int]:
    """Cores assigned to BG tasks (the rest of the machine)."""
    return list(range(mix.fg_count, config.num_cores))


def build_machine(
    mix: Mix, config: MachineConfig, seed: int = 0
) -> Tuple[Machine, List[Process], List[Process]]:
    """Create a machine with the mix's processes pinned and ready."""
    machine = Machine(config.with_seed(_derive_seed(config.seed, mix.name, seed)))
    fg_spec = get_workload(mix.fg_name)
    fg_procs = [
        machine.spawn(fg_spec, core=core, nice=-5)
        for core in fg_cores_of(mix, config)
    ]
    bg_cores = bg_cores_of(mix, config)
    if mix.is_rotate:
        bg_procs = spawn_rotating_background(
            machine,
            get_rotate_pair(mix.rotate_name),
            cores=bg_cores,
            nice=5,
            seed=machine.config.seed,
        )
    else:
        bg_spec = get_workload(mix.bg_name)
        bg_procs = [machine.spawn(bg_spec, core=core, nice=5) for core in bg_cores]
    machine.settle_cache()
    return machine, fg_procs, bg_procs


def get_profile(
    fg_name: str,
    config: Optional[MachineConfig] = None,
    sampling_period_s: float = 5e-3,
) -> ExecutionProfile:
    """Offline profile of an FG benchmark (cached)."""
    config = config or MachineConfig()
    key = (fg_name, config, sampling_period_s, resolve_backend())
    profile = _PROFILE_CACHE.get(key)
    if profile is None:
        disk = get_cache()
        hit, profile = disk.get("profile", key)
        if not hit:
            profiler = OfflineProfiler(
                machine_config=config, sampling_period_s=sampling_period_s
            )
            profile = profiler.profile(get_workload(fg_name))
            disk.put("profile", key, profile)
        _PROFILE_CACHE[key] = profile
    return profile


def run_policy(
    mix: Mix,
    policy: Policy,
    deadlines_s: Optional[Sequence[float]] = None,
    executions: Optional[int] = None,
    warmup: int = DEFAULT_WARMUP,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    static_fg_ways: Optional[int] = None,
    observe_predictor: bool = False,
    runtime_options: Optional[RuntimeOptions] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> RunResult:
    """Run ``mix`` under ``policy`` and return measured results.

    Args:
        mix: The workload mix.
        policy: Resource-management configuration.
        deadlines_s: Per-FG-task deadlines; required when the policy's
            fine controller runs (otherwise optional, used for metrics).
            Computed from the Baseline run when omitted.
        executions: Measured FG executions per task (default:
            ``REPRO_EXECUTIONS`` or 40, read at call time).
        warmup: Executions discarded before measurement.
        config: Machine configuration (defaults to the paper machine).
        seed: Experiment seed, combined with the config seed and mix name.
        static_fg_ways: Partition size for static-partition policies
            (found by :func:`find_static_partition` when omitted).
        observe_predictor: Run the Dirigent runtime in observe-only mode
            (sampling and predicting, controlling nothing) — used by the
            predictor-accuracy experiments on the Baseline configuration.
        runtime_options: Override the runtime's tunables.
        fault_plan: Inject faults into the runtime's sensor/actuator
            surfaces per this plan (``repro.faults``).  The machine and
            all measured ground truth stay fault-free; a zero-fault plan
            (or None) runs bit-identically to a plain run.
    """
    session = PolicySession(
        mix,
        policy,
        deadlines_s=deadlines_s,
        executions=executions,
        warmup=warmup,
        config=config,
        seed=seed,
        static_fg_ways=static_fg_ways,
        observe_predictor=observe_predictor,
        runtime_options=runtime_options,
        fault_plan=fault_plan,
    )
    while not session.done:
        session.advance(DRIVE_BLOCK_TICKS)
    return session.result()


class PolicySession:
    """An incrementally driven policy run (one node's experiment).

    :func:`run_policy` drives one session to completion; the cluster
    layer (:mod:`repro.cluster`) steps several sessions in lockstep.
    Construction performs all setup (machine, static settings, runtime);
    call :meth:`tick` until :attr:`done`, then :meth:`result`.
    """

    def __init__(
        self,
        mix: Mix,
        policy: Policy,
        deadlines_s: Optional[Sequence[float]] = None,
        executions: Optional[int] = None,
        warmup: int = DEFAULT_WARMUP,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
        static_fg_ways: Optional[int] = None,
        observe_predictor: bool = False,
        runtime_options: Optional[RuntimeOptions] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if executions is None:
            executions = default_executions()
        if executions < 1:
            raise ExperimentError("executions must be >= 1")
        config = config or MachineConfig()
        # Non-Baseline policies are judged against the Baseline deadlines;
        # pass an explicit empty tuple to opt out (e.g. partition sweeps).
        if deadlines_s is None and policy.name != BASELINE.name:
            deadlines_s = deadlines_for(
                mix, executions=executions, warmup=warmup, config=config,
                seed=seed,
            )
        self.mix = mix
        self.policy = policy
        self._deadlines = deadlines_s
        self._executions = executions
        self._warmup = warmup
        machine, fg_procs, bg_procs = build_machine(mix, config, seed)
        self.machine = machine
        self._fg_procs = fg_procs
        self._bg_procs = bg_procs

        # Fault injection wraps only the runtime's view of the machine;
        # the machine itself — and with it the completion stream and all
        # measured ground truth — stays fault-free.  With no plan (or a
        # zero-fault plan) no wrapper exists at all, so plain runs are
        # bit-identical by construction.
        self._fault_plan = fault_plan
        self._injector: Optional[FaultInjector] = None
        runtime_system = machine
        if fault_plan is not None and not fault_plan.is_zero:
            self._injector = FaultInjector(
                fault_plan,
                seed=_derive_seed(
                    fault_plan.seed, "faults:%s" % mix.name, seed
                ),
            )
            runtime_system = FaultySystem(machine, self._injector)

        # Static frequency settings.
        if policy.static_bg_grade is not None:
            for proc in bg_procs:
                machine.set_frequency_grade(proc.core, policy.static_bg_grade)
        if policy.static_fg_grade is not None:
            for proc in fg_procs:
                machine.set_frequency_grade(proc.core, policy.static_fg_grade)

        # Static cache partition.
        if policy.static_partition:
            ways = static_fg_ways
            if ways is None:
                ways = find_static_partition(mix, config=config, seed=seed)
            machine.set_fg_partition([p.core for p in fg_procs], ways)

        self.runtime: Optional[DirigentRuntime] = None
        if policy.uses_runtime or observe_predictor:
            task_deadlines = list(deadlines_s) if deadlines_s else [
                math.inf
            ] * len(fg_procs)
            base_opts = runtime_options or RuntimeOptions()
            opts = dc_replace(
                base_opts,
                enable_fine=policy.fine_control,
                enable_coarse=policy.coarse_control,
                initial_fg_ways=policy.initial_fg_ways,
            )
            profile = get_profile(mix.fg_name, config, opts.sampling_period_s)
            if self._injector is not None:
                profile = self._injector.corrupt_profile(profile)
            tasks = [
                ManagedTask(
                    pid=proc.pid,
                    core=proc.core,
                    profile=profile,
                    deadline_s=deadline,
                    ema_weight=opts.ema_weight,
                    predictor_scaling=opts.predictor_scaling,
                )
                for proc, deadline in zip(fg_procs, task_deadlines)
            ]
            runtime = DirigentRuntime(
                runtime_system, tasks, [p.pid for p in bg_procs],
                options=opts,
            )
            machine.add_completion_listener(
                lambda proc, record: runtime.on_fg_completion(
                    proc.pid,
                    record.end_s,
                    record.duration_s,
                    record.instructions,
                    record.llc_misses,
                )
            )
            runtime.start()
            self.runtime = runtime

        # Collect execution records per FG task.
        self._records: Dict[int, List[ExecutionRecord]] = {
            p.pid: [] for p in fg_procs
        }

        def collect(proc: Process, record: ExecutionRecord) -> None:
            bucket = self._records.get(proc.pid)
            if bucket is not None:
                bucket.append(record)

        machine.add_completion_listener(collect)

        # Open the measurement window from the completion stream rather
        # than by per-tick polling: a listener fires at exactly the tick
        # the warmup-th completion lands (same counters, same clock), so
        # the machine can be driven in batched blocks in between.
        def open_window(proc: Process, record: ExecutionRecord) -> None:
            if self._meas_start is None and all(
                len(bucket) >= self._warmup
                for bucket in self._records.values()
            ):
                self._meas_start = _counter_totals(
                    self.machine, self._fg_cores, self._bg_cores
                )

        machine.add_completion_listener(open_window)

        self._target = warmup + executions
        self._fg_cores = [p.core for p in fg_procs]
        self._bg_cores = [p.core for p in bg_procs]
        self._meas_start: Optional[Dict[str, float]] = None
        est_duration = get_workload(mix.fg_name).total_instructions / 1.5e9
        self._max_ticks = int(
            (self._target * est_duration * 12 + 60.0) / config.tick_s
        )
        self._ticks = 0
        self._done = False

    @property
    def done(self) -> bool:
        """True once every FG task has completed its target executions."""
        return self._done

    def completions(self) -> List[int]:
        """Completed executions per FG task so far."""
        return [len(self._records[p.pid]) for p in self._fg_procs]

    @property
    def deadlines(self) -> Optional[Tuple[float, ...]]:
        """The session's per-task deadlines (None for self-judged runs).

        The fleet control plane hands these to replacement sessions so
        a re-placed stream is judged against the *original* goalposts,
        not deadlines recomputed for its shortened execution count.
        """
        if self._deadlines is None:
            return None
        return tuple(self._deadlines)

    def measured_records(self) -> Tuple[Tuple[Tuple[float, float], ...], ...]:
        """Post-warmup ``(end_s, duration_s)`` pairs per FG task so far.

        Valid at any point of the run (not just once done): the fleet
        control plane uses it for partial-credit accounting of sessions
        a node fault cut short.  Times are the session machine's own
        clock.
        """
        warmup, target = self._warmup, self._target
        return tuple(
            tuple(
                (r.end_s, r.duration_s)
                for r in self._records[p.pid][warmup:target]
            )
            for p in self._fg_procs
        )

    def tick(self) -> None:
        """Advance the node by one simulator tick.

        Used by the cluster layer to step several sessions in lockstep;
        single-node runs go through the batched :meth:`advance`.
        """
        if self._done:
            return
        self.machine.tick()
        self._ticks += 1
        if self._ticks % DRIVE_BLOCK_TICKS == 0 or self._meas_start is None:
            self._bookkeep()

    def advance(self, ticks: int = DRIVE_BLOCK_TICKS) -> None:
        """Advance the node by up to ``ticks`` ticks through the machine's
        batched fast path, then run the completion/guard bookkeeping.

        The measurement window still opens at the exact warmup
        completion tick (a completion listener handles it), so block
        driving changes nothing about what is measured.
        """
        if self._done:
            return
        if self._meas_start is None and self._warmup == 0:
            # With no warmup the window opens after the first tick (no
            # completion ever fires "at" it); take that tick alone.
            self.machine.run_ticks(1)
            self._ticks += 1
            self._bookkeep()
            ticks -= 1
            if ticks <= 0 or self._done:
                return
        self.machine.run_ticks(ticks)
        self._ticks += ticks
        self._bookkeep()

    def _bookkeep(self) -> None:
        done = self.completions()
        if self._meas_start is None and all(
            d >= self._warmup for d in done
        ):
            self._meas_start = _counter_totals(
                self.machine, self._fg_cores, self._bg_cores
            )
        if all(d >= self._target for d in done):
            self._done = True
            if self.runtime is not None:
                self.runtime.stop()
            return
        if self._ticks > self._max_ticks:
            raise ExperimentError(
                "run of %r under %s did not finish within the tick "
                "guard (%d completions of %d)"
                % (
                    self.mix.name,
                    self.policy.name,
                    min(done),
                    self._target,
                )
            )

    def result(self) -> RunResult:
        """Measured results; only valid once :attr:`done`."""
        if not self._done:
            raise ExperimentError("session has not finished")
        if self._meas_start is None:
            raise ExperimentError("measurement window never opened")
        meas_end = _counter_totals(
            self.machine, self._fg_cores, self._bg_cores
        )
        meas_start = self._meas_start
        elapsed = meas_end["time"] - meas_start["time"]
        bg_instr = meas_end["bg_instr"] - meas_start["bg_instr"]

        warmup, target = self._warmup, self._target
        durations = tuple(
            tuple(
                r.duration_s for r in self._records[p.pid][warmup:target]
            )
            for p in self._fg_procs
        )
        deadlines_s = self._deadlines
        if deadlines_s is None:
            # Baseline (or observe-only) runs define their own deadlines.
            deadlines_s = [
                deadline_for(duration_stats(list(task)), DEADLINE_SIGMA_FACTOR)
                for task in durations
            ]

        prediction_logs: Tuple[Tuple[PredictionRecord, ...], ...] = ()
        grade_hist: Dict[int, int] = {}
        partition_history: Tuple[int, ...] = ()
        if self.runtime is not None:
            prediction_logs = tuple(
                tuple(task.prediction_log) for task in self.runtime.tasks
            )
            grade_hist = dict(self.runtime.bg_grade_histogram)
            if self.runtime.coarse_controller is not None:
                partition_history = tuple(
                    self.runtime.coarse_controller.partition_history
                )

        return RunResult(
            mix=self.mix,
            policy_name=self.policy.name,
            deadlines_s=tuple(deadlines_s),
            durations_s=durations,
            bg_instr_per_s=bg_instr / elapsed if elapsed > 0 else 0.0,
            elapsed_s=elapsed,
            fg_instr=meas_end["fg_instr"] - meas_start["fg_instr"],
            fg_misses=meas_end["fg_misses"] - meas_start["fg_misses"],
            bg_misses=meas_end["bg_misses"] - meas_start["bg_misses"],
            bg_instr=bg_instr,
            prediction_logs=prediction_logs,
            bg_grade_histogram=grade_hist,
            partition_history=partition_history,
            fault_report=self._fault_report(),
        )

    def _fault_report(self) -> Optional[FaultReport]:
        """Fault/degradation accounting for this run (None without a plan)."""
        if self._fault_plan is None:
            return None
        injector = self._injector
        runtime = self.runtime
        report = FaultReport(
            scenario=self._fault_plan.scenario,
            fault_seed=(
                injector.seed if injector is not None
                else self._fault_plan.seed
            ),
            injected=dict(injector.counts) if injector is not None else {},
            events=len(injector.events) if injector is not None else 0,
            event_signature=(
                tuple(injector.event_signature())
                if injector is not None else ()
            ),
        )
        if runtime is None:
            return report
        anomalies = runtime.sensor_anomalies()
        now = self.machine.now()
        guarded = runtime.guarded
        return dc_replace(
            report,
            hardening_enabled=runtime.hardening_enabled,
            samples_dropped=anomalies["zero_delta"],
            rejected_samples=anomalies["rejected"],
            stale_samples=anomalies["stale"],
            suspect_samples=runtime.suspect_samples,
            health_samples=runtime.health_samples,
            actuations_retried=(
                guarded.actuations_retried if guarded is not None else 0
            ),
            actuations_failed=(
                guarded.actuations_failed if guarded is not None else 0
            ),
            degraded_entries=runtime.degraded_entries,
            safe_entries=runtime.safe_entries,
            degraded_time_s=runtime.degraded_time_s(now)
            + runtime.safe_time_s(now),
            safe_time_s=runtime.safe_time_s(now),
        )


def drive_sessions_vectorized(
    sessions: Sequence[PolicySession],
) -> MultiCell:
    """Drive fresh policy sessions to completion through one MultiCell.

    Observable-for-observable identical to :func:`run_policy`'s serial
    block loop per session: every machine is advanced exactly as its
    own backend would advance it — in the same ``DRIVE_BLOCK_TICKS``
    cadence, with the same per-block bookkeeping — but cells whose
    model state coincides fuse into cell-axis kernels
    (:mod:`repro.sim.vector`).  Returns the driver so callers can
    inspect ``stats`` (``vector_spans``, ``cells_per_span``,
    ``vector_peels``).
    """
    sessions = list(sessions)
    cells = MultiCell([session.machine for session in sessions])

    def _step(indices: List[int], ticks: int) -> None:
        cells.run_ticks(ticks, indices=indices)
        for i in indices:
            sessions[i]._ticks += ticks
            sessions[i]._bookkeep()

    # Mirror PolicySession.advance's no-warmup window opening: one lone
    # tick, then the remainder of the first block.
    short_first = set()
    for i, session in enumerate(sessions):
        if session._warmup == 0 and session._meas_start is None \
                and not session.done:
            session.advance(1)
            short_first.add(i)
    if short_first:
        short = [i for i in sorted(short_first) if not sessions[i].done]
        if short:
            _step(short, DRIVE_BLOCK_TICKS - 1)
    while True:
        active = [i for i, s in enumerate(sessions) if not s.done]
        if not active:
            return cells
        _step(active, DRIVE_BLOCK_TICKS)


def run_policy_batch(
    mix: Mix,
    policy: Policy,
    executions: Optional[int] = None,
    warmup: int = DEFAULT_WARMUP,
    config: Optional[MachineConfig] = None,
    seeds: Sequence[int] = (0,),
    fault_plan: Optional[FaultPlan] = None,
) -> List[RunResult]:
    """Run one (mix, policy) cell at many seeds as one vectorized batch.

    Returns exactly ``[run_policy_cached(..., seed=s) for s in seeds]``
    (or plain per-seed :func:`run_policy` runs when ``fault_plan``
    makes the cell uncacheable): results are bit-identical to serial
    runs and land in the same disk-cache namespaces
    :func:`run_policy_cached` and :func:`measure_baseline` use, so
    batch-produced cells are shared with — and reused from — the
    serial paths.  Under the vector backend the uncached seeds advance
    together through :func:`drive_sessions_vectorized`; homogeneous
    seed batches (same mix, same policy, differing only in their
    noise-drawn completion targets) are exactly the cells that fuse.
    """
    if executions is None:
        executions = default_executions()
    config = config or MachineConfig()
    backend = resolve_backend()
    is_baseline = policy == BASELINE
    cacheable = fault_plan is None
    disk = get_cache() if cacheable else None
    results: Dict[int, RunResult] = {}
    pending: List[int] = []
    for seed in dict.fromkeys(seeds):
        if not cacheable:
            pending.append(seed)
            continue
        if is_baseline:
            mem_key = (mix.name, config, executions, warmup, seed, backend)
            cached = _BASELINE_CACHE.get(mem_key)
            if cached is None:
                hit, cached = disk.get(
                    "baseline",
                    (mix, config, executions, warmup, seed, backend),
                )
                if not hit:
                    pending.append(seed)
                    continue
                _BASELINE_CACHE[mem_key] = cached
            results[seed] = cached
        else:
            hit, cached = disk.get(
                "run",
                (mix, policy, executions, warmup, config, seed, backend),
            )
            if hit:
                results[seed] = cached
            else:
                pending.append(seed)
    if pending:
        if not is_baseline:
            # Deadlines come from the Baseline runs; batch those first
            # so session construction finds them already cached.
            run_policy_batch(
                mix, BASELINE, executions=executions, warmup=warmup,
                config=config, seeds=pending,
            )
        sessions = [
            PolicySession(
                mix, policy, executions=executions, warmup=warmup,
                config=config, seed=seed, fault_plan=fault_plan,
            )
            for seed in pending
        ]
        if backend == BACKEND_VECTOR:
            drive_sessions_vectorized(sessions)
        else:
            # Per-backend cache purity: never let the multi-cell driver
            # produce results filed under another backend's keys (they
            # are bit-identical by contract, but the keys exist exactly
            # so a regression in one backend cannot leak).
            for session in sessions:
                while not session.done:
                    session.advance(DRIVE_BLOCK_TICKS)
        for seed, session in zip(pending, sessions):
            result = session.result()
            results[seed] = result
            if not cacheable:
                continue
            if is_baseline:
                disk.put(
                    "baseline",
                    (mix, config, executions, warmup, seed, backend),
                    result,
                )
                _BASELINE_CACHE[
                    (mix.name, config, executions, warmup, seed, backend)
                ] = result
            else:
                disk.put(
                    "run",
                    (mix, policy, executions, warmup, config, seed, backend),
                    result,
                )
    return [results[seed] for seed in seeds]


@dataclass(frozen=True)
class StandaloneResult:
    """Uncontended FG measurements (used by Figures 4 and 15).

    Attributes:
        fg_name: The benchmark measured.
        durations_s: Per-execution completion times (post-warmup).
        mpki: FG misses per kilo-instruction over the window.
    """

    fg_name: str
    durations_s: Tuple[float, ...]
    mpki: float

    @property
    def stats(self) -> DurationStats:
        """Duration statistics of the standalone executions."""
        return duration_stats(list(self.durations_s))


_STANDALONE_CACHE: Dict[
    Tuple[str, MachineConfig, int, int, int, str], StandaloneResult
] = {}


def measure_standalone(
    fg_name: str,
    executions: Optional[int] = None,
    warmup: int = DEFAULT_WARMUP,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
) -> StandaloneResult:
    """Run an FG benchmark alone at maximum frequency (cached)."""
    if executions is None:
        executions = default_executions()
    config = config or MachineConfig()
    key = (fg_name, config, executions, warmup, seed, resolve_backend())
    cached = _STANDALONE_CACHE.get(key)
    if cached is not None:
        return cached
    disk = get_cache()
    hit, cached = disk.get("standalone", key)
    if hit:
        _STANDALONE_CACHE[key] = cached
        return cached
    machine = Machine(
        config.with_seed(_derive_seed(config.seed, "alone:%s" % fg_name, seed))
    )
    proc = machine.spawn(get_workload(fg_name), core=0, nice=-5)
    machine.settle_cache()
    records: List[ExecutionRecord] = []
    target = warmup + executions
    snaps: Dict[str, CounterSnapshot] = {}

    def on_completion(p: Process, r: ExecutionRecord) -> None:
        records.append(r)
        # Snapshot the window bounds at the exact completion ticks, so
        # the machine can run in batched blocks in between.
        if len(records) == warmup and warmup > 0:
            snaps["start"] = machine.read_counters(0)
        elif len(records) == target:
            snaps["end"] = machine.read_counters(0)

    machine.add_completion_listener(on_completion)
    if warmup == 0:
        machine.run_ticks(1)
        snaps.setdefault("start", machine.read_counters(0))
    guard = int(600.0 / config.tick_s)
    ticks = 0
    while len(records) < target:
        machine.run_ticks(DRIVE_BLOCK_TICKS)
        ticks += DRIVE_BLOCK_TICKS
        if ticks > guard:
            raise ExperimentError(
                "standalone run of %r did not finish in time" % fg_name
            )
    delta = snaps["end"].delta(snaps["start"])
    result = StandaloneResult(
        fg_name=fg_name,
        durations_s=tuple(r.duration_s for r in records[warmup:target]),
        mpki=delta.mpki,
    )
    disk.put("standalone", key, result)
    _STANDALONE_CACHE[key] = result
    return result


def measure_baseline(
    mix: Mix,
    executions: Optional[int] = None,
    warmup: int = DEFAULT_WARMUP,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
) -> RunResult:
    """Run the Baseline configuration (cached)."""
    if executions is None:
        executions = default_executions()
    config = config or MachineConfig()
    backend = resolve_backend()
    key = (mix.name, config, executions, warmup, seed, backend)
    result = _BASELINE_CACHE.get(key)
    if result is None:
        disk = get_cache()
        disk_key = (mix, config, executions, warmup, seed, backend)
        hit, result = disk.get("baseline", disk_key)
        if not hit:
            result = run_policy(
                mix,
                BASELINE,
                executions=executions,
                warmup=warmup,
                config=config,
                seed=seed,
            )
            disk.put("baseline", disk_key, result)
        _BASELINE_CACHE[key] = result
    return result


def deadlines_for(
    mix: Mix,
    executions: Optional[int] = None,
    warmup: int = DEFAULT_WARMUP,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
) -> Tuple[float, ...]:
    """Per-FG-task deadlines from the cached Baseline run."""
    baseline = measure_baseline(
        mix, executions=executions, warmup=warmup, config=config, seed=seed
    )
    return baseline.deadlines_s


def find_static_partition(
    mix: Mix,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    candidates: Optional[Sequence[int]] = None,
    executions: int = 10,
    warmup: int = 3,
    knee_tolerance: float = 0.03,
) -> int:
    """Best static FG partition: the knee of a short exhaustive sweep.

    Mirrors the paper's StaticBoth setup: sweep FG way counts with BG
    cores at minimum frequency and pick the smallest partition whose mean
    FG time is within ``knee_tolerance`` of the sweep's best.
    """
    config = config or MachineConfig()
    backend = resolve_backend()
    key = (mix.name, config, seed, backend)
    cached = _PARTITION_CACHE.get(key)
    if cached is not None:
        return cached
    if candidates is None:
        candidates = list(range(2, min(17, config.llc_ways - 1), 2))
    disk = get_cache()
    disk_key = (
        mix, config, seed, tuple(candidates), executions, warmup,
        knee_tolerance, backend,
    )
    hit, cached = disk.get("partition", disk_key)
    if hit:
        _PARTITION_CACHE[key] = cached
        return cached
    means: List[Tuple[int, float]] = []
    sweep_policy = Policy(
        name="PartitionSweep", static_bg_grade=0, static_partition=True
    )
    for ways in candidates:
        result = run_policy(
            mix,
            sweep_policy,
            deadlines_s=(),
            executions=executions,
            warmup=warmup,
            config=config,
            seed=seed,
            static_fg_ways=ways,
        )
        means.append((ways, result.fg_stats.mean_s))
    best = min(m for _, m in means)
    for ways, m in means:
        if m <= best * (1.0 + knee_tolerance):
            disk.put("partition", disk_key, ways)
            _PARTITION_CACHE[key] = ways
            return ways
    raise ExperimentError("partition sweep produced no knee")  # unreachable


def run_policy_cached(
    mix: Mix,
    policy: Policy,
    executions: Optional[int] = None,
    warmup: int = DEFAULT_WARMUP,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
) -> RunResult:
    """:func:`run_policy` with persistent disk caching.

    Only default-option runs (no deadline overrides, no runtime-option
    overrides, harness-chosen static partition) are cacheable — those
    are exactly the cells the figure drivers and the parallel sweep
    engine fan out.
    """
    if executions is None:
        executions = default_executions()
    config = config or MachineConfig()
    if policy == BASELINE:
        # Baseline runs live in the "baseline" namespace (they double as
        # every other policy's deadline source); don't store them twice.
        return measure_baseline(
            mix, executions=executions, warmup=warmup, config=config,
            seed=seed,
        )
    disk = get_cache()
    disk_key = (mix, policy, executions, warmup, config, seed, resolve_backend())
    hit, result = disk.get("run", disk_key)
    if hit:
        return result
    result = run_policy(
        mix,
        policy,
        executions=executions,
        warmup=warmup,
        config=config,
        seed=seed,
    )
    disk.put("run", disk_key, result)
    return result


def clear_caches() -> None:
    """Drop all cached results, in memory and on disk (tests, CLI)."""
    _PROFILE_CACHE.clear()
    _BASELINE_CACHE.clear()
    _PARTITION_CACHE.clear()
    _STANDALONE_CACHE.clear()
    get_cache().clear()


def _counter_totals(machine: Machine, fg_cores, bg_cores) -> Dict[str, float]:
    now = machine.now()
    totals = {
        "time": now,
        "fg_instr": 0.0,
        "fg_misses": 0.0,
        "bg_instr": 0.0,
        "bg_misses": 0.0,
    }
    for core in fg_cores:
        snap = machine.read_counters(core)
        totals["fg_instr"] += snap.instructions
        totals["fg_misses"] += snap.llc_misses
    for core in bg_cores:
        snap = machine.read_counters(core)
        totals["bg_instr"] += snap.instructions
        totals["bg_misses"] += snap.llc_misses
    return totals


def _derive_seed(config_seed: int, mix_name: str, seed: int) -> int:
    # zlib.crc32 is stable across processes (unlike hash() on strings).
    label = "%d|%s|%d" % (config_seed, mix_name, seed)
    return zlib.crc32(label.encode("utf-8")) & 0x7FFFFFFF
