"""Workload mixes evaluated in the paper (Section 5.1/5.4).

* 15 **single-BG** mixes: each of the 5 FG benchmarks against 5 copies of
  one of {bwaves, pca, rs} (Figure 9a).
* 20 **rotate-BG** mixes: each FG against the four rotate pairs
  (Figure 9b); together these are the 35 single-FG mixes of Figure 7.
* 15 **multi-FG** mixes: five FG/BG combinations covering a low-to-high
  variation range, each with 1-3 concurrent FG copies; the FG+BG process
  count always equals the 6 cores (Figure 9c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ExperimentError
from repro.workloads.catalog import (
    foreground_names,
    get_rotate_pair,
    get_workload,
    rotate_pair_names,
    single_bg_names,
)


@dataclass(frozen=True)
class Mix:
    """One collocation scenario.

    Attributes:
        name: Display name, e.g. ``"ferret rs"`` or ``"raytrace x2 rs"``.
        fg_name: FG benchmark name.
        fg_count: Number of concurrent FG copies.
        bg_name: Single-BG benchmark name, or None for rotate mixes.
        rotate_name: Rotate-pair name, or None for single-BG mixes.
    """

    name: str
    fg_name: str
    fg_count: int = 1
    bg_name: Optional[str] = None
    rotate_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fg_count < 1:
            raise ExperimentError("fg_count must be >= 1")
        if (self.bg_name is None) == (self.rotate_name is None):
            raise ExperimentError(
                "mix %r must name exactly one of bg_name/rotate_name"
                % self.name
            )
        get_workload(self.fg_name)  # validate
        if self.bg_name is not None:
            get_workload(self.bg_name)
        if self.rotate_name is not None:
            get_rotate_pair(self.rotate_name)

    @property
    def is_rotate(self) -> bool:
        """True for rotate-BG mixes."""
        return self.rotate_name is not None

    @property
    def bg_label(self) -> str:
        """Name of the BG side (workload or rotate pair)."""
        return self.bg_name if self.bg_name is not None else self.rotate_name


def single_bg_mixes() -> List[Mix]:
    """The 15 single-BG mixes of Figure 9a."""
    mixes = []
    for fg in foreground_names():
        for bg in single_bg_names():
            mixes.append(Mix(name="%s %s" % (fg, bg), fg_name=fg, bg_name=bg))
    return mixes


def rotate_bg_mixes() -> List[Mix]:
    """The 20 rotate-BG mixes of Figure 9b."""
    mixes = []
    for fg in foreground_names():
        for pair in rotate_pair_names():
            mixes.append(
                Mix(name="%s %s" % (fg, pair), fg_name=fg, rotate_name=pair)
            )
    return mixes


def all_single_fg_mixes() -> List[Mix]:
    """All 35 single-FG mixes (Figures 7 and 10)."""
    return single_bg_mixes() + rotate_bg_mixes()


#: The five FG/BG combinations of Figure 9c, in the paper's order.
MULTI_FG_COMBOS: Tuple[Tuple[str, Optional[str], Optional[str]], ...] = (
    ("bodytrack", None, "libquantum+soplex"),
    ("ferret", "bwaves", None),
    ("fluidanimate", None, "lbm+soplex"),
    ("raytrace", "rs", None),
    ("streamcluster", None, "lbm+namd"),
)


def multi_fg_mixes(max_fg: int = 3) -> List[Mix]:
    """The multi-FG mixes of Figure 9c (1..max_fg FG copies each)."""
    if max_fg < 1:
        raise ExperimentError("max_fg must be >= 1")
    mixes = []
    for fg, bg, rotate in MULTI_FG_COMBOS:
        for count in range(1, max_fg + 1):
            label = rotate if rotate is not None else bg
            mixes.append(
                Mix(
                    name="%s x%d %s" % (fg, count, label),
                    fg_name=fg,
                    fg_count=count,
                    bg_name=bg,
                    rotate_name=rotate,
                )
            )
    return mixes


def mix_by_name(name: str) -> Mix:
    """Look up any paper mix by display name."""
    for mix in all_single_fg_mixes() + multi_fg_mixes():
        if mix.name == name:
            return mix
    raise ExperimentError("unknown mix %r" % name)
