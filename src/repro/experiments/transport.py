"""Columnar IPC transport for parallel-sweep results.

A sweep pack's result rows are ``(key, RunResult, spent_s)`` tuples.
Pickling those object graphs for the worker -> parent return path is
the dominant IPC cost of a warm sweep: every ``RunResult`` drags its
``Mix``, per-task duration tuples, prediction records, and histogram
dicts through pickle's generic machinery.  This module flattens a pack
into a handful of typed columns — one ``array('d')`` of floats, one
``array('q')`` of layout integers, and short string lists — that pickle
as compact contiguous buffers, and reconstructs the exact same objects
on the parent side.

Fidelity is the whole contract: floats ride C doubles bit-for-bit,
histogram entries keep their insertion order, and the parent re-binds
each row's ``Mix`` from the sweep's own mix objects (the serial path
stores those very instances).  Rows the columns cannot carry — today,
results with a ``fault_report`` — fall back to a per-row pickle blob,
so the encoder never loses information.  Bit-identity of a decoded
sweep against a serial one is pinned by the warm-pool determinism
suite.
"""

from __future__ import annotations

import pickle
from array import array
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["EncodedPack", "decode_pack", "encode_pack"]


class EncodedPack:
    """One pack's result rows in columnar form (plus worker counters).

    Attributes:
        keys: Sweep keys, verbatim (small tuples of str/int).
        policy_names: Per-row ``RunResult.policy_name``.
        floats: All float payloads, row-major (``array('d')``).
        ints: Row layout descriptors and integer payloads
            (``array('q')``).
        blobs: Pickled ``RunResult`` fallbacks for rows the columns
            cannot carry (indexed in row order of the fallback rows).
        counters: Worker-process counter deltas (kernel cache activity)
            consumed by the parent into ``SweepResult``.
    """

    __slots__ = ("keys", "policy_names", "floats", "ints", "blobs",
                 "counters")

    def __init__(self) -> None:
        self.keys: List[tuple] = []
        self.policy_names: List[str] = []
        self.floats = array("d")
        self.ints = array("q")
        self.blobs: List[bytes] = []
        self.counters: Dict[str, int] = {}

    def nbytes(self) -> int:
        """Approximate transported payload size in bytes.

        Counts the column buffers, fallback blobs, and key/name
        strings; the few bytes of pickle framing around them are not
        modeled.
        """
        total = self.floats.itemsize * len(self.floats)
        total += self.ints.itemsize * len(self.ints)
        total += sum(len(blob) for blob in self.blobs)
        total += sum(len(name) for name in self.policy_names)
        total += sum(len(repr(key)) for key in self.keys)
        return total


#: Row flags in the ``ints`` column.
_ROW_COLUMNAR = 0
_ROW_PICKLED = 1


def encode_pack(
    rows: Sequence[Tuple[tuple, Any, float]],
    counters: Dict[str, int],
) -> EncodedPack:
    """Flatten ``(key, RunResult, spent_s)`` rows into an EncodedPack."""
    pack = EncodedPack()
    pack.counters = dict(counters)
    floats = pack.floats
    ints = pack.ints
    for key, result, spent in rows:
        pack.keys.append(key)
        pack.policy_names.append(result.policy_name)
        if result.fault_report is not None:
            # Fault reports are deep, rare (chaos runs are serial), and
            # not worth a bespoke layout: fall back to pickle per row.
            ints.append(_ROW_PICKLED)
            floats.append(spent)
            pack.blobs.append(
                pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
            )
            continue
        ints.append(_ROW_COLUMNAR)
        floats.append(spent)
        deadlines = result.deadlines_s
        ints.append(len(deadlines))
        floats.extend(deadlines)
        ints.append(len(result.durations_s))
        for task in result.durations_s:
            ints.append(len(task))
            floats.extend(task)
        floats.append(result.bg_instr_per_s)
        floats.append(result.elapsed_s)
        floats.append(result.fg_instr)
        floats.append(result.fg_misses)
        floats.append(result.bg_misses)
        floats.append(result.bg_instr)
        ints.append(len(result.prediction_logs))
        for log in result.prediction_logs:
            ints.append(len(log))
            for record in log:
                ints.append(record.execution_index)
                floats.append(record.predicted_total_s)
                floats.append(record.actual_total_s)
        histogram = result.bg_grade_histogram
        ints.append(len(histogram))
        for grade, count in histogram.items():
            ints.append(grade)
            ints.append(count)
        ints.append(len(result.partition_history))
        ints.extend(result.partition_history)
    return pack


def decode_pack(
    pack: EncodedPack, mixes_by_name: Dict[str, Any]
) -> List[Tuple[tuple, Any, float]]:
    """Rebuild the ``(key, RunResult, spent_s)`` rows of an EncodedPack.

    ``mixes_by_name`` supplies the parent-side ``Mix`` instances; each
    row's key leads with the mix name, so the decoded ``RunResult``
    carries the identical object a serial sweep would have stored.
    """
    from repro.core.runtime import PredictionRecord
    from repro.experiments.harness import RunResult

    rows: List[Tuple[tuple, Any, float]] = []
    floats = pack.floats
    ints = pack.ints
    fi = 0
    ii = 0
    bi = 0
    for row, key in enumerate(pack.keys):
        flag = ints[ii]
        ii += 1
        spent = floats[fi]
        fi += 1
        if flag == _ROW_PICKLED:
            rows.append((key, pickle.loads(pack.blobs[bi]), spent))
            bi += 1
            continue
        n = ints[ii]
        ii += 1
        deadlines = tuple(floats[fi:fi + n])
        fi += n
        tasks = ints[ii]
        ii += 1
        durations: List[Tuple[float, ...]] = []
        for _ in range(tasks):
            n = ints[ii]
            ii += 1
            durations.append(tuple(floats[fi:fi + n]))
            fi += n
        scalars = floats[fi:fi + 6]
        fi += 6
        logs_n = ints[ii]
        ii += 1
        logs: List[Tuple[PredictionRecord, ...]] = []
        for _ in range(logs_n):
            n = ints[ii]
            ii += 1
            records = []
            for _ in range(n):
                index = ints[ii]
                ii += 1
                records.append(PredictionRecord(
                    execution_index=index,
                    predicted_total_s=floats[fi],
                    actual_total_s=floats[fi + 1],
                ))
                fi += 2
            logs.append(tuple(records))
        hist_n = ints[ii]
        ii += 1
        histogram: Dict[int, int] = {}
        for _ in range(hist_n):
            histogram[ints[ii]] = ints[ii + 1]
            ii += 2
        n = ints[ii]
        ii += 1
        partitions = tuple(ints[ii:ii + n])
        ii += n
        result = RunResult(
            mix=mixes_by_name[key[0]],
            policy_name=pack.policy_names[row],
            deadlines_s=deadlines,
            durations_s=tuple(durations),
            bg_instr_per_s=scalars[0],
            elapsed_s=scalars[1],
            fg_instr=scalars[2],
            fg_misses=scalars[3],
            bg_misses=scalars[4],
            bg_instr=scalars[5],
            prediction_logs=tuple(logs),
            bg_grade_histogram=histogram,
            partition_history=partitions,
        )
        rows.append((key, result, spent))
    return rows
