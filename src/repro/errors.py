"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, workload, or policy configuration is invalid."""


class SimulationError(ReproError):
    """The simulator was driven into an inconsistent state."""


class WorkloadError(ReproError):
    """A workload specification is malformed or unknown."""


class ProfileError(ReproError):
    """An execution profile is missing, empty, or incompatible."""


class ControlError(ReproError):
    """A controller was asked to perform an illegal action."""


class ExperimentError(ReproError):
    """An experiment harness was configured or driven incorrectly."""


class FaultError(ReproError):
    """A fault-injection plan or scenario is invalid."""
