"""Command-line entry point: regenerate paper figures as text tables.

Usage::

    python -m repro list
    python -m repro figure fig10 [--executions 40] [--seed 0] [--max-rows 40]
    python -m repro figure fig10 --workers 4
    python -m repro table1
    python -m repro cache stats
    python -m repro cache clear
    python -m repro cache kernels [stats|list|clear]
    python -m repro bench [--profile profile.pstats] [--skip-floors]
    python -m repro lint [paths ...] [--format=json] [--select=DET,ENV]
    python -m repro chaos [--scenario sensor-degraded] [--mix "bodytrack bwaves"]
    python -m repro chaos --fleet [--scenario node-crash] [--nodes 5]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import FIGURES
from repro.experiments.report import render


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of the Dirigent (ASPLOS 2016) paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    fig = sub.add_parser("figure", help="run one figure driver")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument("--executions", type=int, default=None,
                     help="FG executions per run (default: REPRO_EXECUTIONS or 40)")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--max-rows", type=int, default=0,
                     help="truncate output to this many rows (0 = all)")
    fig.add_argument("--workers", type=int, default=None,
                     help="worker processes for the sweep (default: "
                          "REPRO_WORKERS or the CPU count; 1 = serial)")
    fig.add_argument("--backend", choices=("scalar", "batch"), default=None,
                     help="simulation backend (default: REPRO_SIM_BACKEND "
                          "or batch); scalar is the bit-exact reference")
    sub.add_parser("table1", help="print the benchmark inventory")
    lint = sub.add_parser(
        "lint",
        help="run the determinism & invariant static analyzer",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to analyze "
                           "(default: the installed repro package)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", dest="fmt",
                      help="report format (default: text)")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids or family prefixes "
                           "(e.g. DET,ENV003)")
    lint.add_argument("--root", default=None,
                      help="root for scope-relative paths")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule registry and exit")
    lint.add_argument("--baseline", nargs="?",
                      const=".repro-lint-baseline.json", default=None,
                      metavar="PATH",
                      help="filter findings recorded in a baseline file "
                           "before gating")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline file with the current "
                           "findings")
    lint.add_argument("--changed", action="store_true",
                      help="analyze only files changed in the git "
                           "worktree")
    lint.add_argument("--cache", action="store_true", dest="lint_cache",
                      help="reuse findings for content-unchanged files")
    lint.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="incremental lint cache location")
    cache = sub.add_parser(
        "cache", help="inspect or purge the result and kernel caches"
    )
    cache.add_argument("action", choices=("stats", "clear", "kernels"))
    cache.add_argument(
        "sub", nargs="?", default="stats",
        choices=("stats", "list", "clear"),
        help="kernel-cache operation (only with the kernels action; "
             "default: stats)",
    )
    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection scenario suite "
             "(see docs/robustness.md)",
    )
    chaos.add_argument(
        "--scenario", action="append", default=None, dest="scenarios",
        metavar="NAME",
        help="scenario to run (repeatable; default: the full catalog)",
    )
    chaos.add_argument(
        "--mix", action="append", default=None, dest="mixes",
        metavar="MIX",
        help="workload mix to run (repeatable; default: the chaos suite "
             "mixes)",
    )
    chaos.add_argument("--executions", type=int, default=None,
                       help="measured FG executions per cell (default: "
                            "REPRO_EXECUTIONS or 40)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--max-rows", type=int, default=0)
    chaos.add_argument(
        "--fleet", action="store_true",
        help="run the fleet scenario catalog (node-level faults and the "
             "self-healing control plane) instead of the single-node "
             "sensor/actuator suite",
    )
    chaos.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="fleet size for --fleet (default: 5)",
    )
    bench = sub.add_parser(
        "bench",
        help="run the performance benchmark harness "
             "(writes BENCH_harness.json)",
    )
    bench.add_argument(
        "--profile", metavar="PSTATS", nargs="?",
        const="bench_profile.pstats", default=None,
        help="run under cProfile: dump the stats to PSTATS (default "
             "bench_profile.pstats) and print the top 25 functions by "
             "cumulative time",
    )
    bench.add_argument(
        "--skip-floors", action="store_true",
        help="record measurements without asserting the acceptance "
             "floors (useful on slow shared hosts)",
    )
    return parser


def _load_bench_module():
    """Import ``benchmarks/bench_perf_harness.py`` from the repo tree."""
    import importlib.util
    from pathlib import Path

    path = (
        Path(__file__).resolve().parents[2]
        / "benchmarks" / "bench_perf_harness.py"
    )
    if not path.exists():
        raise FileNotFoundError(
            "benchmark harness not found at %s (the bench command runs "
            "from a source checkout)" % path
        )
    spec = importlib.util.spec_from_file_location("bench_perf_harness", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_bench(args) -> int:
    """Handler for the ``bench`` subcommand."""
    bench = _load_bench_module()
    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            artifact = bench.run_benchmark()
        finally:
            profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
        print("profile written to %s" % args.profile)
    else:
        artifact = bench.run_benchmark()
    backends = artifact["backends"]
    print("artifact written to %s" % bench.ARTIFACT)
    print("tick kernel speedup (default): %.3fx"
          % artifact["tick_kernel"]["speedup_default"])
    print("event-sparse batch/scalar:     %.3fx"
          % backends["event_sparse"]["speedup"])
    print("contended batch/scalar:        %.3fx"
          % backends["contended"]["speedup"])
    print("contended-noisy batch/scalar:  %.3fx"
          % backends["contended_noisy"]["speedup"])
    print("end-to-end Dirigent:           %.3fx"
          % backends["end_to_end_dirigent"]["speedup"])
    solver = backends["fast_path"]["contended"]
    print("contended solver: %d rho iterations, %d warm hits, "
          "%d table hits / %d builds"
          % (solver["rho_iterations"], solver["rho_warm_hits"],
             solver["table_hits"], solver["table_builds"]))
    noisy = artifact["multi_cell"]["noisy_stock"]
    print("noisy multi-cell vector/batch: %.3fx (%d partial peels)"
          % (noisy["speedup"], noisy["stats"]["partial_peels"]))
    print("sweep speedup (warm cache):    %.3fx"
          % artifact["sweep"]["speedup_vs_pre_pr_serial_warm"])
    warm = artifact["warm_worker"]
    print("warm-pool sweep speedup:       %.3fx (%d warm starts, "
          "%d kernel disk hits, %d steals)"
          % (warm["speedup_warm_vs_cold"], warm["warm_starts"],
             warm["kernel_disk_hits"], warm["steals"]))
    if args.skip_floors:
        return 0
    try:
        bench.check_floors(artifact)
    except AssertionError as exc:
        print("FLOOR MISSED: %s" % exc)
        return 1
    print("all acceptance floors met")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(FIGURES):
            print(name)
        return 0
    if args.command == "table1":
        print(render(FIGURES["table1"]()))
        return 0
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "chaos":
        from repro.experiments.chaos import (
            DEFAULT_FLEET_EXECUTIONS,
            DEFAULT_FLEET_NODES,
            run_chaos,
            run_fleet_chaos,
        )
        from repro.faults import FLEET_SCENARIO_NAMES, SCENARIO_NAMES

        catalog = FLEET_SCENARIO_NAMES if args.fleet else SCENARIO_NAMES
        for name in args.scenarios or ():
            if name not in catalog:
                print("unknown scenario %r (available: %s)"
                      % (name, ", ".join(catalog)))
                return 2
        if args.fleet:
            result = run_fleet_chaos(
                scenarios=args.scenarios,
                num_nodes=args.nodes or DEFAULT_FLEET_NODES,
                mixes=args.mixes,
                executions=(
                    args.executions if args.executions is not None
                    else DEFAULT_FLEET_EXECUTIONS
                ),
                seed=args.seed,
            )
        else:
            if args.nodes is not None:
                print("--nodes requires --fleet")
                return 2
            result = run_chaos(
                mixes=args.mixes,
                scenarios=args.scenarios,
                executions=args.executions,
                seed=args.seed,
            )
        print(render(result, max_rows=args.max_rows))
        return 0
    if args.command == "lint":
        from repro.analysis.cli import run_lint

        lint_argv: List[str] = list(args.paths)
        lint_argv += ["--format", args.fmt]
        if args.select:
            lint_argv += ["--select", args.select]
        if args.root:
            lint_argv += ["--root", args.root]
        if args.list_rules:
            lint_argv.append("--list-rules")
        if args.baseline:
            lint_argv += ["--baseline", args.baseline]
        if args.update_baseline:
            lint_argv.append("--update-baseline")
        if args.changed:
            lint_argv.append("--changed")
        if args.lint_cache:
            lint_argv.append("--cache")
        if args.cache_dir:
            lint_argv += ["--cache-dir", args.cache_dir]
        return run_lint(lint_argv)
    if args.command == "cache":
        from repro.experiments.diskcache import get_cache, get_kernel_cache
        if args.action == "kernels":
            kernels = get_kernel_cache()
            if args.sub == "clear":
                removed = kernels.clear()
                print("removed %d cached kernels from %s"
                      % (removed, kernels.root))
                return 0
            if args.sub == "list":
                shown = 0
                for shape, source in kernels.entries():
                    print("%r: %d source bytes" % (shape, len(source)))
                    shown += 1
                print("%d kernel(s) for the current code version" % shown)
                return 0
            stats = kernels.stats()
            print("kernel cache:  %s" % stats["root"])
            print("enabled:       %s" % stats["enabled"])
            print("code version:  %s" % stats["code_version"])
            print("entries:       %d current, %d stale (%.1f KiB)"
                  % (stats["entries"], stats["stale_entries"],
                     stats["total_bytes"] / 1024.0))
            print("this process:  %d hits, %d misses, %d stores"
                  % (stats["hits"], stats["misses"], stats["stores"]))
            print("corrupt drops: %d (unreadable entries discarded this "
                  "process)" % stats["corrupt_drops"])
            return 0
        cache = get_cache()
        if args.action == "clear":
            removed = cache.clear()
            print("removed %d cached entries from %s" % (removed, cache.root))
            return 0
        stats = cache.stats()
        print("cache root:    %s" % stats["root"])
        print("enabled:       %s" % stats["enabled"])
        print("code version:  %s" % stats["code_version"])
        for kind, count in sorted(stats["entries"].items()):
            print("  %-12s %d" % (kind, count))
        print("total entries: %d (%.1f KiB)"
              % (stats["total_entries"], stats["total_bytes"] / 1024.0))
        print("corrupt drops: %d (unreadable entries discarded this "
              "process)" % stats["corrupt_drops"])
        return 0
    driver = FIGURES[args.name]
    kwargs = {}
    if args.executions is not None:
        kwargs["executions"] = args.executions
    if args.workers is not None:
        from repro.experiments.parallel import set_default_workers
        set_default_workers(args.workers)
    if args.backend is not None:
        # Exported rather than passed down: workers inherit the
        # environment, and every cache key folds the resolved backend in.
        import os

        from repro.sim.batch import ENV_BACKEND
        os.environ[ENV_BACKEND] = args.backend
    result = driver(seed=args.seed, **kwargs)
    from repro.experiments.parallel import last_sweep

    print(render(result, max_rows=args.max_rows, sweep=last_sweep()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
