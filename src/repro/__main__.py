"""Command-line entry point: regenerate paper figures as text tables.

Usage::

    python -m repro list
    python -m repro figure fig10 [--executions 40] [--seed 0] [--max-rows 40]
    python -m repro figure fig10 --workers 4
    python -m repro table1
    python -m repro cache stats
    python -m repro cache clear
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import FIGURES
from repro.experiments.report import render


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of the Dirigent (ASPLOS 2016) paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    fig = sub.add_parser("figure", help="run one figure driver")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument("--executions", type=int, default=None,
                     help="FG executions per run (default: REPRO_EXECUTIONS or 40)")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--max-rows", type=int, default=0,
                     help="truncate output to this many rows (0 = all)")
    fig.add_argument("--workers", type=int, default=None,
                     help="worker processes for the sweep (default: "
                          "REPRO_WORKERS or the CPU count; 1 = serial)")
    fig.add_argument("--backend", choices=("scalar", "batch"), default=None,
                     help="simulation backend (default: REPRO_SIM_BACKEND "
                          "or batch); scalar is the bit-exact reference")
    sub.add_parser("table1", help="print the benchmark inventory")
    cache = sub.add_parser("cache", help="inspect or purge the result cache")
    cache.add_argument("action", choices=("stats", "clear"))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(FIGURES):
            print(name)
        return 0
    if args.command == "table1":
        print(render(FIGURES["table1"]()))
        return 0
    if args.command == "cache":
        from repro.experiments.diskcache import get_cache
        cache = get_cache()
        if args.action == "clear":
            removed = cache.clear()
            print("removed %d cached entries from %s" % (removed, cache.root))
            return 0
        stats = cache.stats()
        print("cache root:    %s" % stats["root"])
        print("enabled:       %s" % stats["enabled"])
        print("code version:  %s" % stats["code_version"])
        for kind, count in sorted(stats["entries"].items()):
            print("  %-12s %d" % (kind, count))
        print("total entries: %d (%.1f KiB)"
              % (stats["total_entries"], stats["total_bytes"] / 1024.0))
        return 0
    driver = FIGURES[args.name]
    kwargs = {}
    if args.executions is not None:
        kwargs["executions"] = args.executions
    if args.workers is not None:
        from repro.experiments.parallel import set_default_workers
        set_default_workers(args.workers)
    if args.backend is not None:
        # Exported rather than passed down: workers inherit the
        # environment, and every cache key folds the resolved backend in.
        import os

        from repro.sim.batch import ENV_BACKEND
        os.environ[ENV_BACKEND] = args.backend
    result = driver(seed=args.seed, **kwargs)
    print(render(result, max_rows=args.max_rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
