"""Command-line entry point: regenerate paper figures as text tables.

Usage::

    python -m repro list
    python -m repro figure fig10 [--executions 40] [--seed 0] [--max-rows 40]
    python -m repro table1
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import FIGURES
from repro.experiments.report import render


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of the Dirigent (ASPLOS 2016) paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    fig = sub.add_parser("figure", help="run one figure driver")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument("--executions", type=int, default=None,
                     help="FG executions per run (default: REPRO_EXECUTIONS or 40)")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--max-rows", type=int, default=0,
                     help="truncate output to this many rows (0 = all)")
    sub.add_parser("table1", help="print the benchmark inventory")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(FIGURES):
            print(name)
        return 0
    if args.command == "table1":
        print(render(FIGURES["table1"]()))
        return 0
    driver = FIGURES[args.name]
    kwargs = {}
    if args.executions is not None:
        kwargs["executions"] = args.executions
    result = driver(seed=args.seed, **kwargs)
    print(render(result, max_rows=args.max_rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
