"""Self-healing fleet control plane: detect, fail over, quarantine, shed.

This module runs a faulted cluster (:class:`repro.cluster.Cluster` with
a non-zero :class:`repro.faults.NodeFaultPlan`) the way a datacenter
control plane would run real nodes:

* a :class:`HeartbeatMonitor` consumes per-node beats and walks each
  node through ``alive -> suspect -> dead`` on beat-gap timeouts — it
  never sees the fault schedule, only the beats the schedule lets
  through;
* a :class:`FailoverDispatcher` re-places the FG streams of dead nodes
  onto survivors through :class:`repro.sched.ReservationScheduler`
  admission, with bounded retries under deterministic exponential
  backoff plus seeded jitter (suspect nodes are drained: never chosen
  as targets, not yet evacuated);
* nodes that flap back alive are *quarantined* — excluded as failover
  targets until a dwell passes without another incident (the fleet
  analogue of the single-node normal -> degraded -> safe ladder);
* when the reserved utilization of the surviving fleet crosses a
  threshold the controller enters *fleet degraded mode* and sheds BG
  work on the nodes absorbing re-placed streams.

Determinism: the controller advances every live session in fixed
rounds of ``DRIVE_BLOCK_TICKS`` machine ticks, and every control-plane
event time is derived from the round counter.  Machines are
bit-identical across the scalar/batch/vector backends (pinned by the
equivalence suites), so completions land in the same rounds and the
merged injection + control event stream — the fleet
``event_signature`` — is identical across backends, repeat runs, and
serial vs. vectorized driving.  With ``vectorized=True`` the rounds go
through one :class:`repro.sim.vector.MultiCell`; crashed and
flap-down cells are peeled off simply by leaving their indices out of
the round (the driver-level analogue of a partial peel), replacement
machines join mid-run via :meth:`MultiCell.add_cell`, and throttled
cells stop fusing on their own because their governor state diverges.

Accounting is partial-credit: a stream's target is its node's measured
execution count, credit comes from completions delivered before the
placement's loss-of-service cutover plus everything its replacements
deliver, and undelivered executions count as missed in the fleet-wide
FG attainment — so failover visibly buys QoS and stranded work
visibly costs it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ExperimentError
from repro.experiments.harness import (
    DRIVE_BLOCK_TICKS,
    PolicySession,
    RunResult,
)
from repro.experiments.metrics import (
    DEADLINE_SIGMA_FACTOR,
    deadline_for,
    duration_stats,
)
from repro.faults.fleet import FleetFaultReport, NodeFaultPlan, NodeFaultSpec
from repro.sched.reservation import ReservationScheduler, TaskStream
from repro.sim.config import (
    env_fleet_dead_s,
    env_fleet_suspect_s,
    fleet_failover_enabled,
)
from repro.sim.timebase import derive_rng
from repro.sim.vector import MultiCell
from repro.workloads import get_workload

#: Node health states the monitor reports.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Tunables of the fleet control plane.

    Defaults are plain literals; :meth:`from_env` resolves the
    env-overridable ones (heartbeat timeouts, the failover kill switch)
    at call time, never at import.

    Attributes:
        suspect_timeout_s: Beat gap before a node turns suspect
            (drained as a failover target).
        dead_timeout_s: Beat gap before a node is declared dead (its
            streams are re-placed).
        failover: Master switch for re-placement; monitoring and
            accounting run either way.
        max_retries: Re-placement attempts per incident before the
            stream is stranded.
        backoff_base_s: First retry delay.
        backoff_factor: Multiplier per further retry.
        backoff_jitter_s: Upper bound of the seeded uniform jitter
            added to each backoff.
        quarantine_dwell_s: How long a recovered (flapping) node stays
            quarantined before it can host failovers again.
        capacity_cores: Latency-critical capacity per node offered to
            admission control.
        period_headroom: A stream's admission period is its deadline
            times this factor (period > reservation keeps one stream
            under one core of utilization).
        shed_threshold: Fleet-wide reserved-utilization fraction (of
            surviving capacity) above which BG work is shed on nodes
            hosting re-placed streams.
    """

    suspect_timeout_s: float = 0.15
    dead_timeout_s: float = 0.4
    failover: bool = True
    max_retries: int = 4
    backoff_base_s: float = 0.064
    backoff_factor: float = 2.0
    backoff_jitter_s: float = 0.032
    quarantine_dwell_s: float = 1.0
    capacity_cores: float = 2.0
    period_headroom: float = 1.25
    shed_threshold: float = 0.75

    def __post_init__(self) -> None:
        if self.suspect_timeout_s <= 0:
            raise ExperimentError("suspect_timeout_s must be positive")
        if self.dead_timeout_s <= self.suspect_timeout_s:
            raise ExperimentError(
                "dead_timeout_s must exceed suspect_timeout_s"
            )
        if self.max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        if self.backoff_base_s <= 0 or self.backoff_factor < 1.0:
            raise ExperimentError("backoff must be positive and growing")
        if self.backoff_jitter_s < 0:
            raise ExperimentError("backoff_jitter_s must be >= 0")
        if self.quarantine_dwell_s < 0:
            raise ExperimentError("quarantine_dwell_s must be >= 0")
        if self.capacity_cores <= 0:
            raise ExperimentError("capacity_cores must be positive")
        if self.period_headroom <= 1.0:
            raise ExperimentError("period_headroom must exceed 1")
        if not 0.0 < self.shed_threshold <= 1.0:
            raise ExperimentError("shed_threshold must be in (0, 1]")

    @classmethod
    def from_env(cls, **overrides) -> "ControlPlaneConfig":
        """Config with the env-overridable knobs resolved now."""
        values = dict(
            suspect_timeout_s=env_fleet_suspect_s(),
            dead_timeout_s=env_fleet_dead_s(),
            failover=fleet_failover_enabled(),
        )
        values.update(overrides)
        return cls(**values)


class HeartbeatMonitor:
    """Tracks per-node liveness from heartbeat arrival gaps.

    The monitor is schedule-blind: a partitioned node computes on
    happily, but its beats never arrive, so it walks to ``dead`` like a
    crashed one — exactly the ambiguity a real control plane faces.
    """

    def __init__(
        self, node_names: Sequence[str], config: ControlPlaneConfig
    ) -> None:
        self._suspect_s = config.suspect_timeout_s
        self._dead_s = config.dead_timeout_s
        self._last_beat: Dict[str, float] = {
            name: 0.0 for name in node_names
        }
        self._state: Dict[str, str] = {name: ALIVE for name in node_names}

    def state(self, node: str) -> str:
        """Current health state of ``node``."""
        return self._state[node]

    def states(self) -> Dict[str, str]:
        """Snapshot of every node's health state."""
        return dict(self._state)

    def last_beat(self, node: str) -> float:
        """Arrival time of the node's last seen beat."""
        return self._last_beat[node]

    def beat(self, node: str, now: float) -> List[Tuple[str, str, str]]:
        """Deliver one beat; returns ``(node, old, new)`` transitions.

        A beat from a suspect or dead node flips it back to alive — the
        caller decides whether that recovery earns a quarantine.
        """
        self._last_beat[node] = now
        old = self._state[node]
        if old == ALIVE:
            return []
        self._state[node] = ALIVE
        return [(node, old, ALIVE)]

    def observe(self, now: float) -> List[Tuple[str, str, str]]:
        """Advance timeout state machines; returns transitions in order."""
        transitions: List[Tuple[str, str, str]] = []
        for node, last in self._last_beat.items():
            gap = now - last
            old = self._state[node]
            if gap >= self._dead_s and old != DEAD:
                self._state[node] = DEAD
                transitions.append((node, old, DEAD))
            elif self._suspect_s <= gap < self._dead_s and old == ALIVE:
                self._state[node] = SUSPECT
                transitions.append((node, old, SUSPECT))
        return transitions


class FailoverDispatcher:
    """Reservation-gated re-placement of streams onto surviving nodes.

    Holds one :class:`ReservationScheduler` per node.  Initial (home)
    admissions record what each node already runs; failover placements
    go first-fit over the candidate nodes in the order given, so
    placement is deterministic given the candidate set.
    """

    def __init__(
        self, node_names: Sequence[str], config: ControlPlaneConfig,
    ) -> None:
        self._config = config
        self._schedulers: Dict[str, ReservationScheduler] = {
            name: ReservationScheduler(config.capacity_cores)
            for name in node_names
        }

    def admit_home(self, node: str, streams: Sequence[TaskStream]) -> None:
        """Record the node's own streams (admitted unconditionally).

        A home stream is already running whether or not it fits the
        advertised capacity; recording it keeps failover admission
        honest about what survivors can still absorb.
        """
        scheduler = self._schedulers[node]
        for stream in streams:
            if not scheduler.try_admit(stream):
                scheduler._admitted.append(stream)

    def release(self, node: str) -> None:
        """Void a dead node's reservations (its capacity is gone)."""
        self._schedulers[node] = ReservationScheduler(
            self._config.capacity_cores
        )

    def try_place(
        self,
        streams: Sequence[TaskStream],
        candidates: Sequence[str],
    ) -> Optional[str]:
        """First-fit a stream bundle onto one candidate node.

        All of a node's FG streams move together (they are one mix on
        one machine).  Returns the chosen node name, or None when no
        candidate has the capacity.
        """
        total = sum(stream.utilization for stream in streams)
        for node in candidates:
            scheduler = self._schedulers[node]
            if total <= scheduler.headroom + 1e-12:
                for stream in streams:
                    scheduler.try_admit(stream)
                return node
        return None

    def reserved_utilization(self, nodes: Sequence[str]) -> float:
        """Total reserved utilization over ``nodes``, in cores."""
        return sum(
            self._schedulers[node].reserved_utilization for node in nodes
        )

    def capacity(self, nodes: Sequence[str]) -> float:
        """Total advertised capacity over ``nodes``, in cores."""
        return self._config.capacity_cores * len(nodes)


@dataclass
class _Placement:
    """One hosting assignment of a stream: a session on a host node."""

    session: PolicySession
    host: str
    label: str
    #: Completions with machine-clock ``end_s`` <= cutover are credited;
    #: inf means the placement is (still) fully reachable.
    cutover_s: float = math.inf
    #: Live placements are advanced and can complete; a placement dies
    #: when its host crashes out or its stream moves elsewhere.
    live: bool = True


@dataclass
class _Stream:
    """One FG stream's fleet-level lifecycle."""

    home: str
    target: int
    warmup: int
    deadlines: Optional[Tuple[float, ...]]
    placements: List[_Placement] = field(default_factory=list)
    state: str = "running"  # running | failing | done | stranded
    attempts: int = 0
    next_retry_s: float = 0.0
    incident_onset_s: float = 0.0
    incidents: int = 0

    @property
    def hosting(self) -> _Placement:
        """The placement currently responsible for the stream."""
        return self.placements[-1]


class FleetController:
    """Runs one faulted cluster to resolution under the control plane.

    Built by :meth:`repro.cluster.Cluster.run` for non-zero plans; the
    zero-plan path never constructs one, which is what makes zero-fault
    bit-identity structural rather than coincidental.
    """

    def __init__(
        self,
        nodes: Sequence,  # Sequence[repro.cluster.dispatch.ClusterNode]
        plan: NodeFaultPlan,
        config: Optional[ControlPlaneConfig] = None,
        vectorized: bool = False,
    ) -> None:
        self._nodes = list(nodes)
        self._plan = plan
        self._config = config or ControlPlaneConfig.from_env()
        self._vectorized = vectorized
        self._names = [node.name for node in self._nodes]
        self._schedule = plan.schedule(self._names)
        tick_values = {
            node.session.machine.config.tick_s for node in self._nodes
        }
        if len(tick_values) != 1:
            raise ExperimentError("fleet nodes must share one tick length")
        self._tick_s = tick_values.pop()
        self._round_s = DRIVE_BLOCK_TICKS * self._tick_s
        self._events: List[Tuple[float, str, str, str]] = []
        self._retry_rng = derive_rng(plan.seed, "fleet/failover")
        self._cell_sessions: Dict[int, PolicySession] = {}
        self.vector_stats = None

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    def _quantize(self, t: float) -> float:
        """First round boundary at or after ``t`` (effect times)."""
        return round(
            math.ceil(t / self._round_s - 1e-9) * self._round_s, 9
        )

    def _record(self, t: float, node: str, kind: str, detail: str) -> None:
        self._events.append((round(t, 9), node, kind, detail))

    def _node_by_name(self, name: str):
        for node in self._nodes:
            if node.name == name:
                return node
        raise ExperimentError("unknown node %r" % name)

    def _incident_onset(self, spec: Optional[NodeFaultSpec],
                        t_end: float) -> float:
        """True service-loss time behind a detection at ``t_end``."""
        if spec is None:
            return t_end
        if spec.kind == "flap":
            starts = [
                start for start, _ in spec.down_intervals()
                if self._quantize(start) <= t_end
            ]
            if starts:
                return self._quantize(starts[-1])
        return self._quantize(spec.onset_s)

    def _streams_for(self, node) -> List[TaskStream]:
        """Admission streams of one node's FG tasks.

        Reservation is the task deadline (a tail bound by construction:
        deadlines are mu + k*sigma of clean Baseline completions) and
        the period is the deadline padded by ``period_headroom``.
        Sessions without deadlines (Baseline nodes) fall back to the
        harness's nominal duration estimate.
        """
        deadlines = node.session.deadlines
        if not deadlines:
            est = get_workload(node.mix.fg_name).total_instructions / 1.5e9
            deadlines = tuple([est] * node.mix.fg_count)
        return [
            TaskStream(
                name="%s/fg%d" % (node.name, i),
                period_s=deadline * self._config.period_headroom,
                reservation_s=deadline,
            )
            for i, deadline in enumerate(deadlines)
        ]

    # ------------------------------------------------------------------
    # The fleet loop
    # ------------------------------------------------------------------

    def run(self):
        """Drive the fleet to resolution; returns a ClusterResult."""
        config = self._config
        monitor = HeartbeatMonitor(self._names, config)
        dispatcher = FailoverDispatcher(self._names, config)
        streams: Dict[str, _Stream] = {}
        for node in self._nodes:
            dispatcher.admit_home(node.name, self._streams_for(node))
            streams[node.name] = _Stream(
                home=node.name,
                target=node.executions,
                warmup=node.warmup,
                deadlines=node.session.deadlines,
                placements=[_Placement(
                    session=node.session, host=node.name, label=node.name,
                )],
            )

        cells: Optional[MultiCell] = None
        if self._vectorized:
            cells = MultiCell([node.session.machine for node in self._nodes])
            self._cell_sessions = {
                i: node.session for i, node in enumerate(self._nodes)
            }
            self.vector_stats = cells.stats
        cell_of: Dict[int, int] = {
            id(session): index
            for index, session in self._cell_sessions.items()
        }

        for t, node_name, kind, detail in self._schedule.injection_events():
            self._record(self._quantize(t), node_name, kind, detail)

        specs: Dict[str, Optional[NodeFaultSpec]] = {
            name: self._schedule.spec_for(name) for name in self._names
        }
        onset_latched: Set[str] = set()
        flap_down_now: Dict[str, bool] = {}
        detected: Set[str] = set()
        quarantine_until: Dict[str, float] = {}
        health: Dict[str, List[Tuple[float, str]]] = {
            name: [(0.0, "up")] for name in self._names
        }
        ttd: List[float] = []
        ttr: List[float] = []
        failovers = 0
        retries = 0
        quarantines = 0
        sheds = 0
        suspect_events = 0
        dead_events = 0
        shed_hosts: Set[str] = set()
        lost_node_s = 0.0
        # Generous convergence guard; individual sessions also keep
        # their own tick guards.
        max_rounds = 4 * max(
            node.session._max_ticks for node in self._nodes
        ) // DRIVE_BLOCK_TICKS

        def node_down(name: str, t: float) -> bool:
            spec = specs.get(name)
            return spec is not None and spec.is_down(t)

        rounds = 0
        while True:
            t = round(rounds * self._round_s, 9)
            t_end = round((rounds + 1) * self._round_s, 9)

            # 1. Schedule-driven node state.  Sustained throttles are
            # (re)asserted every round so the per-node runtime can never
            # permanently override the cap; crash/partition onsets pin
            # the placement cutovers that partial credit keys on.
            for name in self._names:
                spec = specs[name]
                if spec is None:
                    continue
                if spec.kind == "slow" and t_end > spec.onset_s:
                    if name not in onset_latched:
                        onset_latched.add(name)
                        health[name].append(
                            (self._quantize(spec.onset_s), "slow")
                        )
                    self._apply_throttle(name, spec, streams)
                elif spec.kind == "crash" and t >= spec.onset_s \
                        and name not in onset_latched:
                    onset_latched.add(name)
                    health[name].append(
                        (self._quantize(spec.onset_s), "down")
                    )
                    for stream in streams.values():
                        for placement in stream.placements:
                            if placement.host == name:
                                placement.cutover_s = min(
                                    placement.cutover_s,
                                    self._quantize(spec.onset_s),
                                )
                elif spec.kind == "partition" and t_end > spec.onset_s \
                        and name not in onset_latched:
                    onset_latched.add(name)
                    health[name].append(
                        (self._quantize(spec.onset_s), "partitioned")
                    )
                    for stream in streams.values():
                        for placement in stream.placements:
                            if placement.host == name:
                                placement.cutover_s = min(
                                    placement.cutover_s,
                                    self._quantize(spec.onset_s),
                                )
                elif spec.kind == "flap":
                    down = spec.is_down(t)
                    if down != flap_down_now.get(name, False):
                        flap_down_now[name] = down
                        health[name].append((t, "down" if down else "up"))

            # Late placements on a node that crashes later need their
            # cutover pinned too; re-checking latched crash nodes keeps
            # that invariant without per-placement bookkeeping.
            for name in onset_latched:
                spec = specs[name]
                if spec is not None and spec.kind == "crash":
                    for stream in streams.values():
                        for placement in stream.placements:
                            if placement.host == name:
                                placement.cutover_s = min(
                                    placement.cutover_s,
                                    self._quantize(spec.onset_s),
                                )

            # 2. Advance live sessions on up nodes by one round.
            advancing: List[PolicySession] = []
            for name in self._names:
                if node_down(name, t):
                    lost_node_s += self._round_s
                    continue
                for stream in streams.values():
                    for placement in stream.placements:
                        if (
                            placement.live
                            and placement.host == name
                            and not placement.session.done
                        ):
                            advancing.append(placement.session)
            self._advance(advancing, cells, cell_of)

            # 3. Heartbeats that survive the schedule reach the monitor.
            for name in self._names:
                spec = specs[name]
                beating = not node_down(name, t)
                if spec is not None and beating:
                    if spec.kind == "partition" and t_end > spec.onset_s:
                        beating = False
                    elif spec.kind == "slow" and t_end > spec.onset_s:
                        # A throttled node agent is starved too: beats
                        # arrive stretched, which is what lets the
                        # monitor see the slowdown at all.
                        beating = rounds % spec.beat_stretch == 0
                if not beating:
                    continue
                for node_name, old, _new in monitor.beat(name, t_end):
                    self._record(
                        t_end, node_name, "node-recovered", "was=%s" % old
                    )
                    health[node_name].append((t_end, "recovered"))
                    if config.quarantine_dwell_s > 0:
                        until = round(
                            t_end + config.quarantine_dwell_s, 9
                        )
                        quarantine_until[node_name] = until
                        quarantines += 1
                        self._record(
                            t_end, node_name, "quarantine",
                            "until=%.3f" % until,
                        )

            # 4. Timeout transitions and stream consequences.
            for name, old, new in monitor.observe(t_end):
                self._record(t_end, name, "node-%s" % new, "was=%s" % old)
                health[name].append((t_end, new))
                if new == SUSPECT:
                    suspect_events += 1
                    continue
                dead_events += 1
                spec = specs.get(name)
                onset = self._incident_onset(spec, t_end)
                if name not in detected:
                    detected.add(name)
                    ttd.append(round(t_end - onset, 9))
                dispatcher.release(name)
                for stream in streams.values():
                    placement = stream.hosting
                    if (
                        placement.host != name
                        or not placement.live
                        or stream.state in ("done", "stranded")
                    ):
                        continue
                    can_progress = spec is not None and spec.kind in (
                        "partition", "slow", "flap"
                    )
                    if config.failover:
                        placement.cutover_s = min(
                            placement.cutover_s,
                            round(
                                placement.session._ticks * self._tick_s, 9
                            ),
                        )
                        placement.live = False
                        stream.state = "failing"
                        stream.attempts = 0
                        stream.next_retry_s = t_end
                        stream.incident_onset_s = onset
                        stream.incidents += 1
                    elif not can_progress:
                        placement.live = False
                        stream.state = "stranded"
                        self._record(
                            t_end, stream.home, "stream-stranded",
                            "no-failover",
                        )
                    # else: no failover but the node still computes
                    # (partition/slow) or will return (flap) — let it
                    # run; partial credit handles the damage.

            # 5. Quarantine releases.
            for name in sorted(quarantine_until):
                if t_end >= quarantine_until[name] \
                        and monitor.state(name) == ALIVE:
                    del quarantine_until[name]
                    self._record(t_end, name, "quarantine-release", "")
                    health[name].append((t_end, "requalified"))

            # 6. Failover processing, in fleet node order.
            for name in self._names:
                stream = streams[name]
                if stream.state != "failing" \
                        or t_end < stream.next_retry_s:
                    continue
                outcome = self._try_failover(
                    stream, monitor, dispatcher, quarantine_until, t_end,
                    cells, cell_of,
                )
                if outcome == "done":
                    continue
                if outcome == "placed":
                    failovers += 1
                    ttr.append(round(t_end - stream.incident_onset_s, 9))
                    host = stream.hosting.host
                    util = dispatcher.reserved_utilization(self._names)
                    alive = [
                        n for n in self._names
                        if monitor.state(n) == ALIVE
                    ]
                    cap = dispatcher.capacity(alive)
                    if cap > 0 and util / cap > config.shed_threshold \
                            and host not in shed_hosts:
                        shed_hosts.add(host)
                        sheds += 1
                        self._shed_bg(host, streams)
                        self._record(
                            t_end, host, "bg-shed",
                            "util=%.2f cap=%.2f" % (util, cap),
                        )
                elif stream.attempts > config.max_retries:
                    stream.state = "stranded"
                    self._record(
                        t_end, stream.home, "stream-stranded",
                        "retries-exhausted",
                    )
                else:
                    retries += 1
                    backoff = (
                        config.backoff_base_s
                        * config.backoff_factor ** (stream.attempts - 1)
                        + self._retry_rng.uniform(
                            0.0, config.backoff_jitter_s
                        )
                    )
                    stream.next_retry_s = round(t_end + backoff, 9)
                    self._record(
                        t_end, stream.home, "failover-retry",
                        "attempt=%d" % stream.attempts,
                    )

            # 7. Resolution check.
            unresolved = False
            for stream in streams.values():
                if stream.state in ("done", "stranded"):
                    continue
                if stream.state == "failing":
                    unresolved = True
                    continue
                live = [p for p in stream.placements if p.live]
                if live and all(p.session.done for p in live):
                    stream.state = "done"
                    continue
                unresolved = True
            if not unresolved:
                break
            rounds += 1
            if rounds > max_rounds:
                raise ExperimentError(
                    "fleet run did not resolve within the round guard "
                    "(%d rounds)" % rounds
                )

        report = FleetFaultReport(
            scenario=self._plan.scenario,
            fault_seed=self._plan.seed,
            injected=self._schedule.injection_counts(),
            events=len(self._events),
            event_signature=tuple(sorted(self._events)),
            failover_enabled=config.failover,
            failovers=failovers,
            failover_retries=retries,
            quarantines=quarantines,
            sheds=sheds,
            suspect_events=suspect_events,
            dead_events=dead_events,
            time_to_detection_s=tuple(ttd),
            time_to_recovery_s=tuple(ttr),
            lost_node_s=round(lost_node_s, 9),
        )
        return self._finalize(
            streams, health, monitor, report,
            elapsed_s=round((rounds + 1) * self._round_s, 9),
        )

    # ------------------------------------------------------------------
    # Round mechanics
    # ------------------------------------------------------------------

    def _advance(
        self,
        sessions: Sequence[PolicySession],
        cells: Optional[MultiCell],
        cell_of: Dict[int, int],
    ) -> None:
        """One round of machine time for each distinct session."""
        seen: Dict[int, PolicySession] = {}
        for session in sessions:
            seen.setdefault(id(session), session)
        ordered = list(seen.values())
        if cells is None:
            for session in ordered:
                session.advance(DRIVE_BLOCK_TICKS)
            return
        vector: List[int] = []
        for session in ordered:
            if session._warmup == 0 and session._meas_start is None:
                # PolicySession.advance owns the lone-tick window-open
                # dance; run this first block serially, join next round.
                session.advance(DRIVE_BLOCK_TICKS)
                continue
            vector.append(cell_of[id(session)])
        if vector:
            cells.run_ticks(DRIVE_BLOCK_TICKS, indices=vector)
            for index in vector:
                session = self._cell_sessions[index]
                session._ticks += DRIVE_BLOCK_TICKS
                session._bookkeep()

    def _apply_throttle(
        self, name: str, spec: NodeFaultSpec,
        streams: Dict[str, _Stream],
    ) -> None:
        for stream in streams.values():
            for placement in stream.placements:
                if placement.live and placement.host == name:
                    machine = placement.session.machine
                    for core in range(machine.config.num_cores):
                        machine.set_frequency_grade(
                            core, spec.throttle_grade
                        )

    def _try_failover(
        self,
        stream: _Stream,
        monitor: HeartbeatMonitor,
        dispatcher: FailoverDispatcher,
        quarantine_until: Dict[str, float],
        t_end: float,
        cells: Optional[MultiCell],
        cell_of: Dict[int, int],
    ) -> str:
        """One placement attempt: 'placed', 'done', or 'no-capacity'."""
        node = self._node_by_name(stream.home)
        remaining = stream.target - min(self._credited_counts(stream))
        if remaining <= 0:
            stream.state = "done"
            return "done"
        stream.attempts += 1
        candidates = [
            name for name in self._names
            if name != stream.hosting.host
            and monitor.state(name) == ALIVE
            and name not in quarantine_until
        ]
        host = dispatcher.try_place(self._streams_for(node), candidates)
        if host is None:
            return "no-capacity"
        seed = derive_rng(
            self._plan.seed,
            "fleet/replacement/%s/%d" % (stream.home, stream.incidents),
        ).randrange(1 << 31)
        session = PolicySession(
            node.mix,
            node.policy,
            deadlines_s=stream.deadlines,
            executions=remaining,
            warmup=stream.warmup,
            config=node.config,
            seed=seed,
        )
        stream.placements.append(_Placement(
            session=session,
            host=host,
            label="%s@%s" % (stream.home, host),
        ))
        stream.state = "running"
        if cells is not None:
            index = cells.add_cell(session.machine)
            self._cell_sessions[index] = session
            cell_of[id(session)] = index
        self._record(
            t_end, stream.home, "failover-placed",
            "host=%s remaining=%d attempt=%d"
            % (host, remaining, stream.attempts),
        )
        return "placed"

    def _shed_bg(self, host: str, streams: Dict[str, _Stream]) -> None:
        """Fleet degraded mode: drop BG work on an absorbing node.

        Pausing goes through the machine, so an unmanaged (Baseline)
        node sheds for good while a Dirigent node's runtime may
        re-admit BG once its own control loop judges the FG safe —
        per-node autonomy is the paper's operating model.
        """
        for stream in streams.values():
            for placement in stream.placements:
                if placement.live and placement.host == host:
                    session = placement.session
                    for proc in session._bg_procs:
                        session.machine.pause(proc.pid)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _credited_records(
        self, stream: _Stream
    ) -> List[List[Tuple[float, float]]]:
        """Credited ``(end_s, duration_s)`` per FG task, capped at target."""
        node = self._node_by_name(stream.home)
        per_task: List[List[Tuple[float, float]]] = [
            [] for _ in range(node.mix.fg_count)
        ]
        for placement in stream.placements:
            for i, task_records in enumerate(
                placement.session.measured_records()
            ):
                for end_s, duration_s in task_records:
                    if end_s <= placement.cutover_s \
                            and len(per_task[i]) < stream.target:
                        per_task[i].append((end_s, duration_s))
        return per_task

    def _credited_counts(self, stream: _Stream) -> List[int]:
        return [len(task) for task in self._credited_records(stream)]

    def _finalize(
        self,
        streams: Dict[str, _Stream],
        health: Dict[str, List[Tuple[float, str]]],
        monitor: HeartbeatMonitor,
        report: FleetFaultReport,
        elapsed_s: float,
    ):
        """Fleet-wide attainment, stranded work, and the ClusterResult."""
        from repro.cluster.dispatch import ClusterResult

        total_target = 0
        total_met = 0
        stranded_exec = 0
        stranded_streams = 0
        node_results: Dict[str, RunResult] = {}
        bg_rate = 0.0
        for name in self._names:
            stream = streams[name]
            missing = 0
            for i, task_records in enumerate(
                self._credited_records(stream)
            ):
                durations = [d for _, d in task_records]
                if stream.deadlines:
                    deadline = stream.deadlines[i]
                elif durations:
                    deadline = deadline_for(
                        duration_stats(durations), DEADLINE_SIGMA_FACTOR
                    )
                else:
                    deadline = 0.0
                total_target += stream.target
                total_met += sum(1 for d in durations if d <= deadline)
                missing += stream.target - len(durations)
            stranded_exec += missing
            if missing > 0:
                stranded_streams += 1
            for placement in stream.placements:
                if not placement.session.done:
                    continue
                run_result = placement.session.result()
                node_results[placement.label] = run_result
                bg_rate += run_result.bg_instr_per_s
        if total_target == 0:
            raise ExperimentError("cluster produced no measured executions")
        report = dc_replace(
            report,
            stranded_streams=stranded_streams,
            stranded_executions=stranded_exec,
        )
        return ClusterResult(
            node_results=node_results,
            fg_success_ratio=total_met / total_target,
            total_bg_instr_per_s=bg_rate,
            node_labels={
                node.name: (node.mix.name, node.policy.name, node.seed)
                for node in self._nodes
            },
            node_health=monitor.states(),
            health_timelines={
                name: tuple(entries) for name, entries in health.items()
            },
            failovers=report.failovers,
            failover_retries=report.failover_retries,
            stranded_streams=stranded_streams,
            stranded_executions=stranded_exec,
            time_to_detection_s=report.time_to_detection_s,
            time_to_recovery_s=report.time_to_recovery_s,
            fleet_elapsed_s=elapsed_s,
            fleet_report=report,
        )
