"""Multi-node cluster layer.

The paper positions Dirigent as orthogonal to cluster schedulers
(Paragon, Quasar, Bubble-Up, ...): "Dirigent can be integrated with these
schemes to manage performance on each node".  This module provides that
integration point on the simulated substrate:

* :class:`ClusterNode` — one node running a mix under a policy (a
  wrapped :class:`repro.experiments.harness.PolicySession`);
* :class:`Cluster` — steps many nodes in lockstep and aggregates FG
  success and batch throughput cluster-wide; with ``vectorized=True``
  the nodes advance through one multi-cell structure-of-arrays driver
  (:func:`repro.experiments.harness.drive_sessions_vectorized`), so
  nodes whose simulated state coincides fuse into cell-axis kernels —
  node results are bit-identical either way, because nodes share no
  simulated state and the vector driver is bit-exact per machine;
* :class:`ReservationDispatcher` — admission control that places FG task
  streams onto nodes using the tail reservations of their measured
  completion-time distributions (:mod:`repro.sched`), the hand-off a
  QoS-aware cluster scheduler would perform.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.errors import ExperimentError
from repro.experiments.harness import (
    PolicySession,
    RunResult,
    drive_sessions_vectorized,
)
from repro.experiments.mixes import Mix
from repro.faults.fleet import FleetFaultReport, NodeFaultPlan
from repro.sched.reservation import (
    ReservationScheduler,
    TaskStream,
    reservation_for,
)
from repro.sim.config import MachineConfig, fleet_failover_enabled
from repro.sim.spanplan import SpanStats


class ClusterNode:
    """One node of the cluster: a named policy session.

    The construction arguments are kept on the node: the fleet control
    plane replays them when it spawns a replacement session for a
    failed-over stream, and ``ClusterResult.node_labels`` reports them
    so chaos tables are self-describing.
    """

    def __init__(
        self,
        name: str,
        mix: Mix,
        policy: Policy,
        executions: int,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
        warmup: int = 5,
    ) -> None:
        self.name = name
        self.mix = mix
        self.policy = policy
        self.executions = executions
        self.config = config
        self.seed = seed
        self.warmup = warmup
        self.session = PolicySession(
            mix,
            policy,
            executions=executions,
            warmup=warmup,
            config=config,
            seed=seed,
        )

    @property
    def done(self) -> bool:
        """True once the node finished its measured executions."""
        return self.session.done

    def tick(self) -> None:
        """Advance the node by one simulator tick."""
        self.session.tick()

    def result(self) -> RunResult:
        """The node's measured results (valid once done)."""
        return self.session.result()


@dataclass(frozen=True)
class ClusterResult:
    """Aggregated outcome of a cluster run.

    The fleet fields default to their clean-run values, so plain (and
    zero-fault) runs carry the same payload they always did plus the
    self-describing labels.

    Attributes:
        node_results: Per-node results keyed by node name; a faulted
            run adds completed replacement sessions under
            ``"<home>@<host>"`` labels.
        fg_success_ratio: Execution-weighted FG success over all nodes.
            Under a fault plan this is the *fleet-wide deadline
            attainment*: every stream's full execution target counts,
            credit comes from completions delivered before the hosting
            node's loss of service plus re-placed work, and stranded
            executions count as missed.
        total_bg_instr_per_s: Sum of BG instruction rates over all
            completed sessions.
        node_labels: ``name -> (mix, policy, seed)`` for every node.
        node_health: Final monitor state per node (``alive``/``suspect``
            /``dead``; empty for clean runs).
        health_timelines: Per-node ``(time_s, state)`` transitions
            merging schedule onsets and monitor verdicts.
        failovers: Streams successfully re-placed onto survivors.
        failover_retries: Placement attempts that backed off.
        stranded_streams: Streams with undelivered executions.
        stranded_executions: FG executions never delivered fleet-wide
            (the stranded-throughput headline number).
        time_to_detection_s: Per-incident onset -> dead-declaration lag.
        time_to_recovery_s: Per-failover onset -> re-placement lag.
        fleet_elapsed_s: Fleet-virtual seconds until resolution (0 for
            clean runs, which do not share a fleet clock).
        fleet_report: Fleet fault/control accounting (None without a
            plan; empty-signature for a zero plan).
    """

    node_results: Dict[str, RunResult]
    fg_success_ratio: float
    total_bg_instr_per_s: float
    node_labels: Dict[str, Tuple[str, str, int]] = field(
        default_factory=dict
    )
    node_health: Dict[str, str] = field(default_factory=dict)
    health_timelines: Dict[str, Tuple[Tuple[float, str], ...]] = field(
        default_factory=dict
    )
    failovers: int = 0
    failover_retries: int = 0
    stranded_streams: int = 0
    stranded_executions: int = 0
    time_to_detection_s: Tuple[float, ...] = ()
    time_to_recovery_s: Tuple[float, ...] = ()
    fleet_elapsed_s: float = 0.0
    fleet_report: Optional[FleetFaultReport] = None


class Cluster:
    """A set of nodes driven in lockstep.

    ``vectorized=True`` opts the run into the multi-cell
    structure-of-arrays driver: all unfinished nodes advance together
    in block-tick lockstep, and nodes whose simulated state coincides
    (e.g. replicas of the same mix/policy at different seeds) fuse into
    cell-axis kernels.  Nodes share no simulated state, so the result
    of every node — and therefore of the cluster — is bit-identical to
    the per-tick default; :attr:`vector_stats` exposes the driver's
    fusion counters after a vectorized run.
    """

    def __init__(
        self, nodes: Sequence[ClusterNode], vectorized: bool = False
    ) -> None:
        if not nodes:
            raise ExperimentError("cluster needs at least one node")
        names = [node.name for node in nodes]
        duplicates = sorted(
            name for name, count in Counter(names).items() if count > 1
        )
        if duplicates:
            raise ExperimentError(
                "node names must be unique (duplicated: %s)"
                % ", ".join(repr(name) for name in duplicates)
            )
        self._nodes = list(nodes)
        self._vectorized = vectorized
        self.vector_stats: Optional[SpanStats] = None

    @property
    def nodes(self) -> List[ClusterNode]:
        """The cluster's nodes."""
        return list(self._nodes)

    def run(
        self,
        fault_plan: Optional[NodeFaultPlan] = None,
        control: Optional["object"] = None,
    ) -> ClusterResult:
        """Step all nodes until each finished its executions.

        A non-zero ``fault_plan`` hands the run to the fleet control
        plane (:class:`repro.cluster.control.FleetController`), which
        injects the planned node faults and — when failover is enabled —
        re-places streams off dead nodes.  ``control`` optionally
        carries a :class:`repro.cluster.control.ControlPlaneConfig`.
        A ``None`` or zero plan takes the exact pre-fleet code path, so
        zero-fault runs are bit-identical to plain runs by construction
        (the only addition is the empty report / label metadata).
        """
        if fault_plan is not None and not fault_plan.is_zero:
            # Imported here: control.py imports ClusterResult from this
            # module, so a top-level import would be a cycle.
            from repro.cluster.control import FleetController

            controller = FleetController(
                self._nodes,
                fault_plan,
                config=control,
                vectorized=self._vectorized,
            )
            result = controller.run()
            self.vector_stats = controller.vector_stats
            return result
        if self._vectorized:
            driver = drive_sessions_vectorized(
                [node.session for node in self._nodes]
            )
            self.vector_stats = driver.stats
        else:
            pending = list(self._nodes)
            while pending:
                for node in pending:
                    node.tick()
                pending = [node for node in pending if not node.done]
        results = {node.name: node.result() for node in self._nodes}
        met = 0
        total = 0
        bg_rate = 0.0
        for result in results.values():
            for deadline, durations in zip(
                result.deadlines_s, result.durations_s
            ):
                total += len(durations)
                met += sum(1 for d in durations if d <= deadline)
            bg_rate += result.bg_instr_per_s
        if total == 0:
            raise ExperimentError("cluster produced no measured executions")
        report = None
        if fault_plan is not None:
            report = FleetFaultReport(
                scenario=fault_plan.scenario,
                fault_seed=fault_plan.seed,
                failover_enabled=fleet_failover_enabled(),
            )
        return ClusterResult(
            node_results=results,
            fg_success_ratio=met / total,
            total_bg_instr_per_s=bg_rate,
            node_labels={
                node.name: (node.mix.name, node.policy.name, node.seed)
                for node in self._nodes
            },
            fleet_report=report,
        )


@dataclass(frozen=True)
class StreamRequest:
    """An FG task stream a tenant asks the cluster to host.

    Attributes:
        name: Stream label.
        period_s: Task inter-arrival period.
        durations_s: Measured completion-time distribution of the task
            under the management policy the nodes will run.
    """

    name: str
    period_s: float
    durations_s: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ExperimentError("period must be positive")
        if not self.durations_s:
            raise ExperimentError("stream needs a duration distribution")


class ReservationDispatcher:
    """First-fit placement of task streams onto nodes by reservation.

    Each node offers ``capacity_cores`` of latency-critical capacity; a
    stream's footprint is the tail reservation of its duration
    distribution divided by its period.  Streams that fit nowhere are
    rejected (the cluster scheduler would look for another rack).
    """

    def __init__(
        self,
        num_nodes: int,
        capacity_cores: float = 1.0,
        target_percentile: float = 0.95,
    ) -> None:
        if num_nodes < 1:
            raise ExperimentError("need at least one node")
        self._schedulers = [
            ReservationScheduler(capacity_cores) for _ in range(num_nodes)
        ]
        self._percentile = target_percentile
        self.placements: Dict[str, int] = {}
        self.rejected: List[str] = []

    @property
    def num_nodes(self) -> int:
        """Number of nodes being packed."""
        return len(self._schedulers)

    def place(self, request: StreamRequest) -> Optional[int]:
        """Place one stream; returns the node index or None if rejected."""
        reservation = reservation_for(
            list(request.durations_s), self._percentile
        )
        stream = TaskStream(
            name=request.name,
            period_s=request.period_s,
            reservation_s=reservation,
        )
        for index, scheduler in enumerate(self._schedulers):
            if scheduler.try_admit(stream):
                self.placements[request.name] = index
                return index
        self.rejected.append(request.name)
        return None

    def place_all(self, requests: Sequence[StreamRequest]) -> int:
        """Place many streams; returns how many were admitted."""
        admitted = 0
        for request in requests:
            if self.place(request) is not None:
                admitted += 1
        return admitted

    def utilization(self) -> List[float]:
        """Reserved utilization per node."""
        return [s.reserved_utilization for s in self._schedulers]
