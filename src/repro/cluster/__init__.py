"""Cluster integration layer: per-node Dirigent under a cluster scheduler."""

from repro.cluster.control import (
    ControlPlaneConfig,
    FailoverDispatcher,
    FleetController,
    HeartbeatMonitor,
)
from repro.cluster.dispatch import (
    Cluster,
    ClusterNode,
    ClusterResult,
    ReservationDispatcher,
    StreamRequest,
)

__all__ = [
    "ClusterNode",
    "Cluster",
    "ClusterResult",
    "ControlPlaneConfig",
    "FailoverDispatcher",
    "FleetController",
    "HeartbeatMonitor",
    "StreamRequest",
    "ReservationDispatcher",
]
