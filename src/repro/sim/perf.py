"""Analytic per-tick performance model.

For each running process the model combines three effects the paper's
mechanisms act on:

* **Frequency**: compute-bound work scales with core frequency, while the
  memory-stall component of CPI is frequency-invariant in wall time (the
  miss penalty in *cycles* grows with frequency), so memory-bound phases
  benefit less from DVFS — exactly why throttling streaming BG tasks is
  cheap and speeding up FG tasks has diminishing returns.
* **Cache allocation**: the phase's miss curve evaluated at the process's
  effective LLC ways yields its MPKI.
* **Bandwidth contention**: all misses share the memory system; the loaded
  penalty couples every core's progress rate.

Demand and latency are mutually dependent (faster cores emit more misses,
raising the penalty, slowing everyone), so the tick solves a small fixed
point over the aggregate utilization ``rho``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.config import misscurve_table_enabled
from repro.sim.memory import MemorySystem

#: Fixed-point iterations over the aggregate utilization ``rho``.  Shared
#: with the inlined hot loop in :meth:`repro.sim.machine.Machine.tick` so
#: the two implementations cannot drift apart.
FIXED_POINT_ITERATIONS = 3

#: Per-kilo-instruction scale applied to MPKI/APKI terms.  Multiplication
#: by this constant (rather than division by 1000.0) is the canonical
#: form; the machine's inline loop uses the same constant so both paths
#: round identically.
MPKI_SCALE = 1e-3


@dataclass(frozen=True)
class PerfInput:
    """Per-process inputs to one tick of the performance model.

    Attributes:
        freq_ghz: Effective core frequency.
        base_cpi: Phase compute CPI (no misses).
        mpki: Misses per kilo-instruction at the current allocation.
        mem_sensitivity: Phase multiplier on the loaded penalty.
        jitter: Multiplicative OS-noise factor on the progress rate.
    """

    freq_ghz: float
    base_cpi: float
    mpki: float
    mem_sensitivity: float
    jitter: float = 1.0


@dataclass(frozen=True)
class PerfOutput:
    """Per-process results of one tick of the performance model.

    Attributes:
        ips: Instructions retired per second.
        miss_rate: LLC misses per second.
        cpi: Effective cycles per instruction.
        cycles_per_s: Busy cycles per second (the core frequency in Hz).
    """

    ips: float
    miss_rate: float
    cpi: float
    cycles_per_s: float


def solve_tick(
    inputs: Sequence[PerfInput],
    memory: MemorySystem,
    rho_hint: float = 0.0,
    iterations: int = FIXED_POINT_ITERATIONS,
    refine_final: bool = True,
) -> Tuple[List[PerfOutput], float]:
    """Solve one tick's coupled progress rates.

    Args:
        inputs: Model inputs for every *running* process.
        memory: The shared memory system (provides the penalty curve).
        rho_hint: Starting utilization guess, typically last tick's value;
            the fixed point converges in 2-3 iterations from a warm start.
        iterations: Fixed-point iterations to run.
        refine_final: Re-evaluate the outputs once more at the converged
            utilization so outputs and rho agree exactly.  The machine's
            inline hot loop skips this refinement as a deliberate economy;
            pass False to reproduce its results bit-for-bit.

    Returns:
        Per-process outputs (aligned with ``inputs``) and the final
        utilization ``rho``.
    """
    if iterations < 1:
        raise SimulationError("iterations must be >= 1")
    tabulate = misscurve_table_enabled()
    rho = max(0.0, rho_hint)
    outputs: List[PerfOutput] = []
    converged = False
    for _ in range(iterations):
        if tabulate:
            penalty_ns = _penalty_memo(memory, rho)
            outputs = [_evaluate_memo(entry, penalty_ns) for entry in inputs]
        else:
            penalty_ns = memory.penalty_ns(rho)
            outputs = [_evaluate(entry, penalty_ns) for entry in inputs]
        total_miss_rate = sum(out.miss_rate for out in outputs)
        new_rho = memory.utilization_for(total_miss_rate)
        if new_rho == rho:
            # The update left rho bit-unchanged, so every remaining
            # iteration — and the final refinement — would re-derive the
            # exact same penalty and outputs.  Skipping them is an
            # identity, not an approximation; warm-started callers (the
            # hint is last tick's converged rho) exit here on the first
            # iteration when nothing moved.
            converged = True
            break
        rho = new_rho
    if refine_final and not converged:
        # Final evaluation at the converged utilization so outputs and
        # rho agree.
        if tabulate:
            penalty_ns = _penalty_memo(memory, rho)
            outputs = [_evaluate_memo(entry, penalty_ns) for entry in inputs]
        else:
            penalty_ns = memory.penalty_ns(rho)
            outputs = [_evaluate(entry, penalty_ns) for entry in inputs]
    return outputs, rho


#: Exact-input memo over :func:`_evaluate`.  The function is pure and its
#: inputs are plain floats, so a hit returns a bit-identical (and shared,
#: frozen) PerfOutput; keys are the exact float tuple, never a rounded or
#: hashed approximation.  Offline profiling sweeps re-solve the same
#: (phase, allocation, frequency) points many times, which is where the
#: memo pays.  Bounded to keep long parameter sweeps from hoarding memory.
_EVAL_MEMO: Dict[Tuple[float, ...], PerfOutput] = {}
_EVAL_MEMO_MAX = 4096
_eval_memo_hits = 0
_eval_memo_misses = 0


def _evaluate_memo(entry: PerfInput, penalty_ns: float) -> PerfOutput:
    global _eval_memo_hits, _eval_memo_misses
    key = (
        entry.freq_ghz, entry.base_cpi, entry.mpki,
        entry.mem_sensitivity, entry.jitter, penalty_ns,
    )
    out = _EVAL_MEMO.get(key)
    if out is not None:
        _eval_memo_hits += 1
        return out
    _eval_memo_misses += 1
    out = _evaluate(entry, penalty_ns)
    if len(_EVAL_MEMO) >= _EVAL_MEMO_MAX:
        _EVAL_MEMO.clear()
    _EVAL_MEMO[key] = out
    return out


def evaluate_memo_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the :func:`solve_tick` evaluation memo."""
    return {
        "hits": _eval_memo_hits,
        "misses": _eval_memo_misses,
        "size": len(_EVAL_MEMO),
    }


def clear_evaluate_memo() -> None:
    """Drop the evaluation memo and reset its counters (test isolation)."""
    global _eval_memo_hits, _eval_memo_misses
    _EVAL_MEMO.clear()
    _eval_memo_hits = 0
    _eval_memo_misses = 0


#: Exact-key table over :meth:`MemorySystem.penalty_ns`.  The penalty is a
#: pure function of the curve constants and the (clamped) utilization, and
#: warm-started solves revisit the same handful of rho values, so a hit
#: returns the bit-identical float without re-running the queueing curve.
_PENALTY_TABLE: Dict[Tuple[float, float, float, float], float] = {}
_PENALTY_TABLE_MAX = 4096
_penalty_hits = 0
_penalty_builds = 0


def _penalty_memo(memory: MemorySystem, rho: float) -> float:
    global _penalty_hits, _penalty_builds
    key = (memory.base_latency_ns, memory.contention_scale, memory.rho_cap, rho)
    pen = _PENALTY_TABLE.get(key)
    if pen is not None:
        _penalty_hits += 1
        return pen
    _penalty_builds += 1
    pen = memory.penalty_ns(rho)
    if len(_PENALTY_TABLE) >= _PENALTY_TABLE_MAX:
        _PENALTY_TABLE.clear()
    _PENALTY_TABLE[key] = pen
    return pen


def solver_table_stats() -> Dict[str, int]:
    """Hit/build counters across the solver's exact tables.

    ``output_*`` mirrors :func:`evaluate_memo_stats` (the PerfOutput
    table); ``penalty_*`` counts the loaded-penalty table.  A *build* is
    a direct evaluation that populated an entry, a *hit* an exact-key
    lookup that skipped it.
    """
    return {
        "penalty_hits": _penalty_hits,
        "penalty_builds": _penalty_builds,
        "penalty_entries": len(_PENALTY_TABLE),
        "output_hits": _eval_memo_hits,
        "output_builds": _eval_memo_misses,
        "output_entries": len(_EVAL_MEMO),
    }


def clear_solver_tables() -> None:
    """Drop every solver table and reset counters (test isolation)."""
    global _penalty_hits, _penalty_builds
    _PENALTY_TABLE.clear()
    _penalty_hits = 0
    _penalty_builds = 0
    clear_evaluate_memo()


def warm_solver_tables(config, phases: Sequence[object]) -> int:
    """Pre-seed the solver memos for a sweep's workload phases.

    Evaluates every ``(phase, DVFS grade, integer LLC ways)`` state at
    the cold-start utilization (``rho = 0``, the first iteration of
    every fixed point) through the exact-key memos, so a fresh worker
    process enters its first simulation with the hottest solver states
    already tabulated.  Seeding goes through the same
    :func:`_penalty_memo`/:func:`_evaluate_memo` code as live solves
    with the same expression for the miss curve, so a seeded entry is
    bit-identical to the one a cold run would build — warming changes
    hit counters, never results.  Fractional occupancy-weighted ways
    and jittered lanes simply miss the memo as before.

    Returns the number of memo entries evaluated (0 when tabulation is
    disabled via ``REPRO_MISSCURVE_TABLE``).
    """
    if not misscurve_table_enabled():
        return 0
    memory = MemorySystem(config)
    penalty_ns = _penalty_memo(memory, 0.0)
    seeded = 0
    for phase in phases:
        floor = phase.mpki_floor
        scale = phase.ways_scale
        for freq_ghz in config.freq_grades_ghz:
            for ways in range(1, config.llc_ways + 1):
                w = float(ways)
                # Same association as the scalar reference
                # (machine.py) so seeded keys are bit-equal to live
                # ones.
                mpki = floor + (phase.mpki_peak - floor) * math.exp(
                    -w / scale
                )
                entry = PerfInput(
                    freq_ghz=freq_ghz,
                    base_cpi=phase.base_cpi,
                    mpki=mpki,
                    mem_sensitivity=phase.mem_sensitivity,
                    jitter=1.0,
                )
                _evaluate_memo(entry, penalty_ns)
                seeded += 1
    return seeded


class MissCurveTable:
    """Exact per-process ``PerfOutput`` table over reachable solver states.

    For one phase the model inputs are fully determined by three axes:
    the effective LLC ways ``w`` (fixes MPKI via the miss curve
    ``floor + delta * exp(-w / ways_scale)``), the core frequency, and
    the utilization ``rho`` (fixes the loaded penalty).  Partitions and
    DVFS grades are drawn from small discrete sets, so contended solves
    revisit the same states over and over; this table keys outputs on
    the *exact* float triple ``(ways, freq_ghz, rho)`` — never a rounded
    bucket — which makes every lookup bit-identical to re-running
    :meth:`MemorySystem.penalty_ns` and the evaluation, a property
    pinned by a hypothesis suite in ``tests/sim/test_solver_tables.py``.

    When ``REPRO_MISSCURVE_TABLE`` disables tabulation the table stores
    nothing and every call falls through to the direct computation.
    """

    __slots__ = (
        "_memory", "_freq_default", "_base_cpi", "_sens", "_jitter",
        "_floor", "_delta", "_ways_scale", "_mpki", "_out",
        "hits", "builds",
    )

    def __init__(
        self,
        memory: MemorySystem,
        *,
        base_cpi: float,
        mem_sensitivity: float,
        mpki_floor: float,
        mpki_delta: float,
        ways_scale: float,
        jitter: float = 1.0,
    ) -> None:
        self._memory = memory
        self._base_cpi = base_cpi
        self._sens = mem_sensitivity
        self._jitter = jitter
        self._floor = mpki_floor
        self._delta = mpki_delta
        self._ways_scale = ways_scale
        self._mpki: Dict[float, float] = {}
        self._out: Dict[Tuple[float, float, float], PerfOutput] = {}
        self.hits = 0
        self.builds = 0

    def mpki(self, ways: float) -> float:
        """Miss curve at ``ways``, served from the exact-key table."""
        mp = self._mpki.get(ways)
        if mp is None:
            # Same expression (and association) as the scalar reference
            # and the generated span kernels.
            mp = self._floor + self._delta * math.exp(-ways / self._ways_scale)
            if misscurve_table_enabled():
                self._mpki[ways] = mp
        return mp

    def output(self, ways: float, freq_ghz: float, rho: float) -> PerfOutput:
        """Tabulated solve of one (ways, frequency, rho) state."""
        key = (ways, freq_ghz, rho)
        out = self._out.get(key)
        if out is not None:
            self.hits += 1
            return out
        self.builds += 1
        entry = PerfInput(
            freq_ghz=freq_ghz,
            base_cpi=self._base_cpi,
            mpki=self.mpki(ways),
            mem_sensitivity=self._sens,
            jitter=self._jitter,
        )
        out = _evaluate(entry, self._memory.penalty_ns(rho))
        if misscurve_table_enabled():
            self._out[key] = out
        return out


def _evaluate(entry: PerfInput, penalty_ns: float) -> PerfOutput:
    stall_cycles = (
        entry.mpki * MPKI_SCALE
        * penalty_ns
        * entry.mem_sensitivity
        * entry.freq_ghz  # ns -> cycles at freq_ghz GHz
    )
    cpi = entry.base_cpi + stall_cycles
    ips = entry.freq_ghz * 1e9 / cpi * entry.jitter
    return PerfOutput(
        ips=ips,
        miss_rate=ips * entry.mpki * MPKI_SCALE,
        cpi=cpi,
        cycles_per_s=entry.freq_ghz * 1e9 * entry.jitter,
    )
