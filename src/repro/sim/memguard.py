"""MemGuard-style memory-bandwidth reservation (related-work mechanism).

Section 3.2 of the paper surveys memory-bandwidth reservation (Yun et
al., MemGuard) as an alternative QoS mechanism.  This module implements
the software variant on top of the same :class:`SystemInterface` the
Dirigent runtime uses, so the two approaches can be compared on the same
substrate (``bench_ablation_memguard``): each regulated core gets a
per-period bandwidth budget; a core that exhausts its budget is stopped
until the period ends, then resumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ControlError
from repro.sim.osal import SystemInterface

#: Default regulation period (MemGuard uses OS-tick-scale periods).
DEFAULT_PERIOD_S = 0.02

#: Budget checks per period.
DEFAULT_CHECKS_PER_PERIOD = 4


@dataclass(frozen=True)
class BandwidthBudget:
    """Per-task bandwidth reservation.

    Attributes:
        pid: Regulated process.
        core: Core the process is pinned to.
        bytes_per_s: Guaranteed-rate budget for the task.
    """

    pid: int
    core: int
    bytes_per_s: float

    def __post_init__(self) -> None:
        if self.bytes_per_s <= 0:
            raise ControlError("bandwidth budget must be positive")


class MemGuard:
    """Periodic per-core bandwidth-budget enforcement.

    Args:
        system: The node's control surface.
        budgets: Reservations for the regulated (BG) tasks.
        line_bytes: Bytes transferred per LLC miss.
        period_s: Regulation period; throttled tasks resume at its end.
        checks_per_period: Budget checks within each period.
    """

    def __init__(
        self,
        system: SystemInterface,
        budgets: List[BandwidthBudget],
        line_bytes: int = 64,
        period_s: float = DEFAULT_PERIOD_S,
        checks_per_period: int = DEFAULT_CHECKS_PER_PERIOD,
    ) -> None:
        if not budgets:
            raise ControlError("MemGuard needs at least one budget")
        if period_s <= 0:
            raise ControlError("period must be positive")
        if checks_per_period < 1:
            raise ControlError("checks_per_period must be >= 1")
        self._sys = system
        self._budgets = list(budgets)
        self._line = line_bytes
        self._period = period_s
        self._check_interval = period_s / checks_per_period
        self._check_index = 0
        self._running = False
        self._period_base: Dict[int, float] = {}
        self._throttled: List[int] = []
        self.throttle_events = 0
        self.periods = 0

    @property
    def period_s(self) -> float:
        """Regulation period length."""
        return self._period

    @property
    def throttled_pids(self) -> List[int]:
        """Tasks currently stopped for exceeding their budget."""
        return list(self._throttled)

    def start(self) -> None:
        """Begin regulation."""
        if self._running:
            raise ControlError("MemGuard already started")
        self._running = True
        self._begin_period()
        self._sys.schedule_wakeup(self._check_interval, self._on_check)

    def stop(self) -> None:
        """Stop regulation and release every throttled task."""
        self._running = False
        for pid in self._throttled:
            self._sys.resume(pid)
        self._throttled.clear()

    def _begin_period(self) -> None:
        self.periods += 1
        self._check_index = 0
        for pid in self._throttled:
            self._sys.resume(pid)
        self._throttled.clear()
        for budget in self._budgets:
            snap = self._sys.read_counters(budget.core)
            self._period_base[budget.pid] = snap.llc_misses

    def _on_check(self) -> None:
        if not self._running:
            return
        self._check_index += 1
        for budget in self._budgets:
            if budget.pid in self._throttled:
                continue
            snap = self._sys.read_counters(budget.core)
            used_bytes = (
                snap.llc_misses - self._period_base.get(budget.pid, 0.0)
            ) * self._line
            if used_bytes > budget.bytes_per_s * self._period:
                self._sys.pause(budget.pid)
                self._throttled.append(budget.pid)
                self.throttle_events += 1
        if self._check_index >= int(
            round(self._period / self._check_interval)
        ):
            self._begin_period()
        self._sys.schedule_wakeup(self._check_interval, self._on_check)
