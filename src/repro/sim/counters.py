"""Per-core performance counters, mirroring the MSR events Dirigent reads.

The real runtime samples retired instructions and LLC load misses through
model-specific performance counters.  The simulated machine accumulates the
same events per core; readers get immutable snapshots so stale reads cannot
alias live state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import SimulationError


@dataclass(frozen=True)
class CounterSnapshot:
    """Cumulative event counts of one core at a point in virtual time.

    Attributes:
        time_s: Virtual time of the snapshot.
        instructions: Retired instructions since machine start.
        cycles: Busy core cycles since machine start.
        llc_accesses: LLC references since machine start.
        llc_misses: LLC load misses since machine start.
    """

    time_s: float
    instructions: float
    cycles: float
    llc_accesses: float
    llc_misses: float

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Return the event deltas between this snapshot and ``earlier``."""
        if earlier.time_s > self.time_s:
            raise SimulationError("delta baseline is newer than snapshot")
        return CounterSnapshot(
            time_s=self.time_s - earlier.time_s,
            instructions=self.instructions - earlier.instructions,
            cycles=self.cycles - earlier.cycles,
            llc_accesses=self.llc_accesses - earlier.llc_accesses,
            llc_misses=self.llc_misses - earlier.llc_misses,
        )

    def with_time(self, time_s: float) -> "CounterSnapshot":
        """This snapshot's counts re-stamped at a different time.

        Used by the fault-injection layer to model a dropped sample: the
        read happens *now* but returns counter values frozen at an
        earlier observation.
        """
        return CounterSnapshot(
            time_s=time_s,
            instructions=self.instructions,
            cycles=self.cycles,
            llc_accesses=self.llc_accesses,
            llc_misses=self.llc_misses,
        )

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction over the counted window."""
        if self.instructions <= 0:
            return 0.0
        return self.llc_misses / self.instructions * 1000.0


class CounterBank:
    """Mutable accumulator of the counter events for every core."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise SimulationError("num_cores must be >= 1")
        self.num_cores = num_cores
        self._instructions: List[float] = [0.0] * num_cores
        self._cycles: List[float] = [0.0] * num_cores
        self._llc_accesses: List[float] = [0.0] * num_cores
        self._llc_misses: List[float] = [0.0] * num_cores

    def record(
        self,
        core: int,
        instructions: float,
        cycles: float,
        llc_accesses: float,
        llc_misses: float,
    ) -> None:
        """Accumulate one tick's worth of events for ``core``."""
        self._check_core(core)
        self._instructions[core] += instructions
        self._cycles[core] += cycles
        self._llc_accesses[core] += llc_accesses
        self._llc_misses[core] += llc_misses

    def hot_arrays(self) -> tuple:
        """Direct references to the per-core accumulator lists.

        Returns ``(instructions, cycles, llc_accesses, llc_misses)``; the
        machine's tick kernel indexes these in place instead of paying a
        :meth:`record` call per core per tick.  The list objects are
        stable for the bank's lifetime.
        """
        return (
            self._instructions,
            self._cycles,
            self._llc_accesses,
            self._llc_misses,
        )

    def snapshot(self, core: int, time_s: float) -> CounterSnapshot:
        """Return an immutable snapshot of ``core``'s counters."""
        self._check_core(core)
        return CounterSnapshot(
            time_s=time_s,
            instructions=self._instructions[core],
            cycles=self._cycles[core],
            llc_accesses=self._llc_accesses[core],
            llc_misses=self._llc_misses[core],
        )

    def total_instructions(self, cores) -> float:
        """Sum of retired instructions over an iterable of core ids."""
        return sum(self._instructions[c] for c in cores)

    def total_llc_misses(self, cores) -> float:
        """Sum of LLC misses over an iterable of core ids."""
        return sum(self._llc_misses[c] for c in cores)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise SimulationError("core %d out of range" % core)
