"""Telemetry traces: time series of the node's management state.

Records what an operator's dashboard would show — per-core frequency
grades, memory utilization, FG cache occupancy, paused-task counts —
by sampling the machine at a fixed period through its own timer wheel.
Used by the examples to visualize a control episode and by tests to
assert controller dynamics without poking at internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.machine import Machine


@dataclass(frozen=True)
class TraceSample:
    """One telemetry sample.

    Attributes:
        time_s: Sample time.
        frequencies_ghz: Effective frequency per core.
        rho: Memory-bandwidth utilization.
        paused: Number of paused processes.
        effective_ways: Inertia-filtered LLC occupancy per core.
    """

    time_s: float
    frequencies_ghz: Tuple[float, ...]
    rho: float
    paused: int
    effective_ways: Tuple[float, ...]


class MachineTracer:
    """Samples a machine's management state on a fixed period."""

    def __init__(self, machine: Machine, period_s: float = 5e-3) -> None:
        if period_s <= 0:
            raise SimulationError("trace period must be positive")
        self._machine = machine
        self._period = period_s
        self._running = False
        self.samples: List[TraceSample] = []

    @property
    def period_s(self) -> float:
        """Sampling period."""
        return self._period

    def start(self) -> None:
        """Begin sampling."""
        if self._running:
            raise SimulationError("tracer already started")
        self._running = True
        self._machine.schedule_wakeup(self._period, self._sample)

    def stop(self) -> None:
        """Stop sampling."""
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        machine = self._machine
        num_cores = machine.config.num_cores
        self.samples.append(
            TraceSample(
                time_s=machine.now(),
                frequencies_ghz=tuple(
                    machine.governor.frequency_ghz(core)
                    for core in range(num_cores)
                ),
                rho=machine.rho,
                paused=sum(
                    1 for proc in machine.processes if not proc.is_running
                ),
                effective_ways=tuple(
                    machine.cache.effective_ways(core)
                    for core in range(num_cores)
                ),
            )
        )
        machine.schedule_wakeup(self._period, self._sample)

    # -- analysis helpers --------------------------------------------------

    def series(self, field: str, core: Optional[int] = None) -> List[float]:
        """Extract one field as a flat series.

        Args:
            field: ``"rho"``, ``"paused"``, ``"frequency"`` or ``"ways"``.
            core: Required for the per-core fields.
        """
        if field == "rho":
            return [s.rho for s in self.samples]
        if field == "paused":
            return [float(s.paused) for s in self.samples]
        if field == "frequency":
            if core is None:
                raise SimulationError("frequency series needs a core")
            return [s.frequencies_ghz[core] for s in self.samples]
        if field == "ways":
            if core is None:
                raise SimulationError("ways series needs a core")
            return [s.effective_ways[core] for s in self.samples]
        raise SimulationError("unknown trace field %r" % field)


#: Glyphs for the ascii sparkline, low to high.
_SPARK_GLYPHS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a series as a one-line ascii sparkline.

    Values are averaged into ``width`` buckets and mapped onto a
    ten-glyph intensity ramp; an empty series renders as an empty string.
    """
    if width < 1:
        raise SimulationError("width must be >= 1")
    if not values:
        return ""
    buckets: List[float] = []
    n = len(values)
    per = max(1, n // width)
    for start in range(0, n, per):
        chunk = values[start:start + per]
        buckets.append(sum(chunk) / len(chunk))
        if len(buckets) == width:
            break
    lo = min(buckets)
    hi = max(buckets)
    span = hi - lo
    if span <= 0:
        return _SPARK_GLYPHS[len(_SPARK_GLYPHS) // 2] * len(buckets)
    out = []
    for value in buckets:
        idx = int((value - lo) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[idx])
    return "".join(out)
