"""Multi-cell structure-of-arrays driver for the vector backend.

The span machinery made a *single* machine fast; every sweep cell,
Monte-Carlo seed, and fleet node still pays one Python-level simulation
loop each.  This module fuses *across* simulations: a
:class:`MultiCell` holds N independent machines ("cells") and advances
all cells whose model state agrees in one cell-axis kernel call
(:func:`repro.sim.spanplan.compile_cell_kernel`).

**What can fuse.**  Cells whose *shared* model inputs are bit-identical
— per-lane phase constants, per-lane frequencies, cache occupancy, rho,
cache grouping, and the machine-level model parameters — and that carry
no per-cell entropy sources (OS jitter, energy accounting, stolen
overhead time).  Their *per-cell* state is exactly the accumulation
side: counters, progress, execution misses, noise-drawn completion
targets, and the wall clock (cells may sit at different absolute
ticks).  Because every per-tick model quantity is a pure function of
the shared state, the fused kernel computes it once in scalar Python
floats and applies the resulting increments to all cells with one
broadcast float64 array addition — IEEE-identical to each cell adding
alone, so the fused path is bit-exact against the scalar reference.

**Horizons come from trips, not estimates.**  The per-machine batch
engine bounds its spans with heuristic phase/completion horizons
because its span must not cross a divergence point.  The cell kernels
instead *detect* divergence exactly — a phase-boundary guard or an FG
completion trips the kernel before the divergent tick is applied — so
a fused span only needs the machine's exact discrete-event horizon
(timer deadlines, DVFS transitions) and can otherwise run to the tick
budget.  Trips peel *partially*: only the tripped cells are committed
(at the exact tick they diverged) and evicted, while the surviving
cells keep fusing over the remaining budget — the shared trajectory
is a pure function of the shared state, never of the member set, so
the continuation is bit-exact.  A completion-tripped cell replays the
divergent tick through the scalar reference kernel (``Machine.tick``
— what the batch engine would have executed, bit-identically) and
rejoins a fused group once its shared state re-coincides: rho and the
occupancy filter converge to exact float fixed points, so cells that
took the same model path regroup.

**Plan reuse.**  Cell plans are keyed by the structural fingerprint
plus a power-of-two cell-axis width; the per-cell columns are gathered
fresh each span, so the same plan (and its miss-curve/fixed-point
memos) serves any group of matching cells regardless of membership.
Padding columns carry ``inf`` guard bounds and targets — they can
never trip — and their accumulator garbage is never read back.

**Without numpy** (an optional dependency) or with
``REPRO_VECTOR_NUMPY=0`` the fused kernels stay off and every cell
advances through its own batch engine — the pure-Python fallback is
the peel-off path applied to everything, so results are identical
either way; only the throughput changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.config import (
    env_vector_cells,
    span_compile_enabled,
    vector_numpy_enabled,
)
from repro.sim.perf import FIXED_POINT_ITERATIONS as _FIXED_POINT_ITERATIONS
from repro.sim.process import STATE_RUNNING
from repro.sim.spanplan import (
    MAX_MEMO,
    MAX_PLANS,
    SpanStats,
    compile_cell_kernel,
)

try:  # numpy is optional: the driver degrades to per-machine engines.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    _np = None

__all__ = ["CELL_COLUMNS", "CellPlan", "MultiCell", "numpy_available"]

_INF = float("inf")

#: Machine-readable registry of the scalar hot-state surface this
#: backend mirrors: every attribute (or ``process.<member>`` entry, or
#: ``<name>()`` state-advancing callable) that ``Machine.tick`` mutates,
#: mapped to *how* the multi-cell driver accounts for it — a fused
#: column scattered back by ``_commit_cell``, a commit-time write, or a
#: deliberate peel to the per-machine batch engine (which runs the
#: scalar reference bit-identically).  ``repro lint``'s ``COV001``
#: cross-checks this registry against an AST def-use extraction of the
#: scalar kernel in both directions: a hot-state mutation missing here
#: is a silent-corruption risk (the fused path would drop it), and an
#: entry with no scalar counterpart is stale documentation.  Keys
#: follow the extraction's naming: plain machine attributes
#: (``_rho``), per-process members (``process.progress``), mutating
#: method calls on processes (``process.advance()``), and
#: state-advancing callable attributes (``_cache_tick()``).
CELL_COLUMNS = {
    "_cnt_arrays": "state rows CI/CC/CA/CM, scattered by _commit_cell",
    "process.progress": "state row P, scattered by _commit_cell",
    "process.execution_misses": "state row EM, scattered by _commit_cell",
    "process.advance()": "completion tick replays through Machine.tick",
    "process.complete_execution()": (
        "completion tick replays through Machine.tick"
    ),
    "process._sync_phase_cursor()": (
        "cursors synced while fingerprinting (_cell_state)"
    ),
    "process.current_phase()": (
        "phase constants are plan columns, re-gathered per span"
    ),
    "_ips_prev": "plan.ips_prev scattered per core by _commit_cell",
    "_rho": "committed rho written back by _commit_cell",
    "memory": "m.memory.observe(rho) on commit",
    "cache": "m.cache.span_commit(...) on commit",
    "_cache_tick()": (
        "span_commit applies the span's whole occupancy update"
    ),
    "clock": "m.clock.tick advanced by the committed span length",
    "_settled": "settle_cache() forced before fingerprinting",
    "_completion_listeners": (
        "completion ticks replay through Machine.tick, which fires them"
    ),
    "governor": "event ticks dispatched via the per-cell batch engine",
    "timers": "event ticks dispatched via the per-cell batch engine",
    "_energy": "energy-accounting cells never fuse (wholesale peel)",
    "_stolen_s": "cells with pending stolen time never fuse (peel)",
    "_gauss_fns": "jittered cells never fuse (wholesale peel)",
}


def numpy_available() -> bool:
    """Whether numpy imported (the fused cell kernels need it)."""
    return _np is not None


def _pad_width(cells: int) -> int:
    """Cell-axis allocation width: next power of two, at least 2."""
    width = 2
    while width < cells:
        width *= 2
    return width


class CellPlan:
    """Structure-of-arrays snapshot feeding one cell-axis kernel.

    The shared model constants mirror :class:`~repro.sim.spanplan.
    SpanPlan` lane for lane; the cell axis adds ``state`` — a
    ``(6n, W)`` float64 array stacking the per-lane blocks
    ``[CI; CC; CA; CM; P; EM]`` (counters, progress, misses) — the
    ``(6n, 1)`` per-tick increment column ``buf``, per-lane progress
    row views ``prows``, and per-cell FG target arrays ``tts``.
    ``prev_w`` / ``mpki_a`` / ``coef`` and the fixed-point ``memo``
    persist across spans of the same plan, exactly as span plans do.
    """

    __slots__ = (
        "kernel", "shape", "n", "width", "lane_cores", "isfg",
        "guard_lanes", "guard_bounds",
        "floor", "delta", "wscale", "sens", "freq", "fh", "cpi0",
        "apki", "prev_w", "mpki_a", "coef", "eff", "ips_prev",
        "wbuf", "tbuf", "dt", "base_ns", "scale", "rho_cap",
        "inv_peak", "alpha", "alpha_entry", "memo", "max_memo",
        "active_bits", "groups_commit", "disjoint",
        "state", "buf", "prows", "tts",
    )


class MultiCell:
    """Advances many independent machines, fusing agreeing cells.

    The driver loop mirrors ``BatchEngine.run_ticks`` per cell —
    events dispatched through the same exact timer/DVFS horizon, the
    scalar kernel as the event-tick fallback — then groups the cells
    whose state fingerprints agree and runs each group through one
    fused cell-axis kernel.  Cells that cannot fuse (jitter, energy
    accounting, stolen time, non-disjoint cache groups, or simply no
    bit-identical peer) advance through their own batch engine, and
    are re-examined for fusion at their next horizon.
    """

    def __init__(self, machines: Sequence) -> None:
        self._machines = list(machines)
        #: Fast-path observability counters (``vector_*`` fields).
        self.stats = SpanStats()
        self._plans: Dict[tuple, CellPlan] = {}

    @property
    def machines(self) -> List:
        """The driven machines, in cell-index order."""
        return list(self._machines)

    def add_cell(self, machine) -> int:
        """Adopt ``machine`` as a new cell; returns its cell index.

        The fleet control plane uses this when a failover spawns a
        replacement session mid-run: the new machine simply joins the
        cell axis and fuses (or not) by the same fingerprint rules as
        the initial cells.  Adding a cell never perturbs existing ones —
        cells share no state and are only grouped per ``run_ticks``
        call.
        """
        self._machines.append(machine)
        return len(self._machines) - 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_ticks(
        self, ticks: int, indices: Optional[Sequence[int]] = None
    ) -> None:
        """Advance every cell (or the ``indices`` subset) by ``ticks``.

        Equivalent, observable-for-observable, to calling
        ``machine.run_ticks(ticks)`` on each cell in isolation.
        """
        if ticks <= 0:
            return
        machines = self._machines
        cells = range(len(machines)) if indices is None else indices
        remaining: Dict[int, int] = {c: ticks for c in cells}
        fused_ok = (
            _np is not None
            and vector_numpy_enabled()
            and span_compile_enabled()
        )
        cap = env_vector_cells()
        if cap is not None and cap < 2:
            fused_ok = False
        while remaining:
            groups: Dict[tuple, List[int]] = {}
            horizons: Dict[int, int] = {}
            cellinfo: Dict[int, tuple] = {}
            for c in list(remaining):
                m = machines[c]
                rem = remaining[c]
                engine = m._batch_engine
                if engine is None:  # scalar-backend cell: reference loop
                    m.run_ticks(rem)
                    del remaining[c]
                    continue
                if (
                    not fused_ok
                    or m._sigma > 0.0
                    or m._energy is not None
                ):
                    # Per-cell entropy can never fuse: run wholesale.
                    engine.run_ticks(rem)
                    del remaining[c]
                    continue
                horizon = self._exact_horizon(m, rem)
                if horizon < 1:
                    m.dispatch_events()
                    horizon = self._exact_horizon(m, rem)
                if horizon < 1:
                    # Event work landed on this very tick: the scalar
                    # kernel is the semantic reference for it.
                    m.tick()
                    if rem <= 1:
                        del remaining[c]
                    else:
                        remaining[c] = rem - 1
                    continue
                state = self._cell_state(m)
                if state is None:
                    # Stolen time, idle cores only, or a non-disjoint
                    # grouping: advance to the engine's own horizon and
                    # re-examine for fusion afterwards.
                    self._engine_chunk(c, remaining)
                    continue
                horizons[c] = horizon
                cellinfo[c] = state
                groups.setdefault(state[0], []).append(c)

            for members in groups.values():
                parts = (
                    [members] if cap is None
                    else [members[k:k + cap]
                          for k in range(0, len(members), cap)]
                )
                for part in parts:
                    if len(part) >= 2:
                        self._run_fused(part, cellinfo, horizons,
                                        remaining)
                    else:
                        # No bit-identical peer this round: bounded
                        # advance so the cell can rejoin later.
                        self._engine_chunk(part[0], remaining)

    # ------------------------------------------------------------------
    # Horizons and per-engine advancement
    # ------------------------------------------------------------------

    @staticmethod
    def _exact_horizon(m, budget: int) -> int:
        """Exact discrete-event horizon (timers, DVFS) — no estimates.

        Phase boundaries and FG completions need no horizon here: the
        fused kernel detects them exactly and trips before the
        divergent tick is applied.
        """
        now = m.clock.tick
        horizon = budget
        deadline = m.timers.next_deadline()
        if deadline is not None and deadline - now < horizon:
            horizon = deadline - now
        transition = m.governor.next_transition_tick()
        if transition is not None and transition - now < horizon:
            horizon = transition - now
        return horizon

    def _engine_chunk(self, c: int, remaining: Dict[int, int]) -> None:
        """Advance one cell through its batch engine by one horizon."""
        m = self._machines[c]
        rem = remaining[c]
        chunk = m._batch_engine._horizon(rem)
        if chunk < 1:
            chunk = 1
        m._batch_engine.run_ticks(chunk)
        if rem <= chunk:
            del remaining[c]
        else:
            remaining[c] = rem - chunk

    # ------------------------------------------------------------------
    # Cell fingerprinting
    # ------------------------------------------------------------------

    def _cell_state(self, m) -> Optional[tuple]:
        """Fingerprint one machine, or None when it cannot fuse.

        Returns ``(group_key, struct_key, lanes, active_bits,
        grouping)``.  Two cells may share a fused span iff their
        ``group_key`` — the structural signature plus the exact float
        values of rho and the occupancy vector — compares equal; the
        per-cell quantities (counters, progress, noise-drawn targets,
        wall clock, guard bounds) are deliberately excluded because
        the kernel carries them on the cell axis.
        """
        if any(m._stolen_s):
            return None
        if not m._settled:
            m.settle_cache()
        lanes: List[tuple] = []
        for core, proc in enumerate(m._procs_by_core):
            if proc is None or proc.state != STATE_RUNNING:
                continue
            if not proc._phase_start <= proc.progress < proc._phase_end:
                proc._sync_phase_cursor()
            lanes.append((core, proc))
        if not lanes:
            return None
        active_bits = 0
        for core, proc in lanes:
            if proc._spec.phases[proc._phase_index].apki > 0:
                active_bits |= 1 << core
        grouping, disjoint = m.cache.span_grouping(active_bits)
        if not disjoint:
            return None
        config = m.config
        cache = m.cache
        snap = cache._tau <= 0
        alpha = None if snap else cache.inertia_alpha(config.tick_s)
        gov_freqs = m._gov_freqs
        lane_sig = []
        for core, proc in lanes:
            phase = proc._spec.phases[proc._phase_index]
            if proc.is_fg:
                guarded = (
                    proc._phase_index != len(proc._spec.phases) - 1
                )
            else:
                guarded = (
                    proc._phase_start > 0.0 or proc._phase_end < proc._total
                )
            lane_sig.append((
                core, proc.is_fg, guarded,
                phase.mpki_floor, phase.mpki_peak, phase.ways_scale,
                phase.mem_sensitivity, phase.base_cpi, phase.apki,
                gov_freqs[core],
            ))
        memory = m.memory
        struct = (
            config.num_cores, tuple(lane_sig), grouping, snap, alpha,
            config.tick_s, memory.base_latency_ns,
            memory.contention_scale, memory.rho_cap,
            memory.seconds_per_miss_at_peak,
        )
        group_key = (struct, m._rho, tuple(m._cache_eff))
        return group_key, struct, lanes, active_bits, grouping

    # ------------------------------------------------------------------
    # Fused spans
    # ------------------------------------------------------------------

    def _run_fused(
        self,
        members: List[int],
        cellinfo: Dict[int, tuple],
        horizons: Dict[int, int],
        remaining: Dict[int, int],
    ) -> None:
        """One fused span over ``members``, peeling only tripped cells.

        The shared model trajectory is a pure function of the shared
        state — cell membership never feeds back into it — so when a
        guard or FG completion trips a subset of cells, the survivors
        can keep fusing along the *same* trajectory.  Each tripped
        cell is committed at the exact tick it diverged, its column
        neutralized (infinite bounds: it can never trip again), and
        the kernel is recalled over the remaining budget.  The floats
        the survivors see are the ones the smaller group would have
        computed from scratch, so partial peels are bit-exact.
        """
        machines = self._machines
        stats = self.stats
        span = min(
            min(horizons[c], remaining[c]) for c in members
        )
        width = len(members)
        struct = cellinfo[members[0]][1]
        alloc = _pad_width(width)
        plan_key = (struct, alloc)
        plan = self._plans.get(plan_key)
        if plan is None:
            if len(self._plans) >= MAX_PLANS:
                self._plans.clear()
            plan = self._build_plan(members[0], cellinfo, alloc)
            self._plans[plan_key] = plan
            stats.plan_builds += 1
        else:
            stats.plan_reuses += 1

        n = plan.n
        st = plan.state
        isfg = plan.isfg
        for j, c in enumerate(members):
            m = machines[c]
            lanes = cellinfo[c][2]
            cnt_i, cnt_c, cnt_a, cnt_m = m._cnt_arrays
            for i, (core, proc) in enumerate(lanes):
                st[i, j] = cnt_i[core]
                st[n + i, j] = cnt_c[core]
                st[2 * n + i, j] = cnt_a[core]
                st[3 * n + i, j] = cnt_m[core]
                st[4 * n + i, j] = proc.progress
                st[5 * n + i, j] = proc.execution_misses
                if isfg[i]:
                    plan.tts[i][j] = proc._target_total
            for g, li in enumerate(plan.guard_lanes):
                core, proc = lanes[li]
                if proc.is_fg:
                    bound = proc._phase_end
                else:
                    progress = proc.progress
                    total = proc._total
                    offset = (
                        progress % total if progress >= total else progress
                    )
                    bound = progress - offset + proc._phase_end
                plan.guard_bounds[g][j] = bound
        if alloc > width:
            # Padding columns must never trip: infinite bounds, and
            # their accumulator garbage is never read back.
            for i in range(n):
                if isfg[i]:
                    plan.tts[i][width:] = _INF
            for bounds in plan.guard_bounds:
                bounds[width:] = _INF
        m0 = machines[members[0]]
        plan.eff[:] = m0._cache_eff

        # Kernel-recall loop.  Each round advances every still-fused
        # column until a trip evicts some subset; survivors continue
        # over the remaining budget.  A trip never applies the
        # divergent tick, so at every trip ``total`` is strictly below
        # ``span`` — every evicted cell has at least one tick left.
        total = 0
        span_left = span
        rho = m0._rho
        active = list(range(width))
        any_trip = False
        while True:
            executed, rho, stat, mh, mm, mce, trip, completed = (
                plan.kernel(span_left, rho, *plan.guard_bounds)
            )
            stats.memo_hits += mh
            stats.memo_misses += mm
            stats.misscurve_evals += mce
            # Every full-model tick resolves through the fixed-point
            # memo: a miss ran the iterations, a hit — like every
            # stationary tick — reused an already-converged rho.
            stats.rho_iterations += _FIXED_POINT_ITERATIONS * mm
            stats.rho_warm_hits += stat + mh
            if executed:
                stats.vector_ticks += executed * len(active)
                total += executed
                span_left -= executed
            if trip is None:
                break
            any_trip = True
            survivors = [j for j in active if not trip[j]]
            cont = bool(survivors) and span_left >= 1
            for j in active:
                if not trip[j]:
                    continue
                c = members[j]
                if cont:
                    stats.partial_peels += 1
                rem = remaining[c]
                if total:
                    self._commit_cell(
                        machines[c], plan, cellinfo[c][2], j, rho, total
                    )
                    rem -= total
                if completed:
                    # Replay the divergent tick through the scalar
                    # reference kernel — exactly what the batch engine
                    # would run for a one-tick span — while the rest
                    # of the group stays fused.
                    stats.vector_peels += 1
                    machines[c].tick()
                    rem -= 1
                # A phase-boundary guard trip needs no replay: the
                # next round's fingerprint resyncs the phase cursor
                # and the cell's next tick is a normal model tick —
                # under the new phase constants — so it regroups.
                if rem <= 0:
                    del remaining[c]
                else:
                    remaining[c] = rem
                # Neutralize the evicted column: infinite bounds and
                # targets can never trip, and its accumulator garbage
                # is never read back.
                for bounds in plan.guard_bounds:
                    bounds[j] = _INF
                for i in range(n):
                    if isfg[i]:
                        plan.tts[i][j] = _INF
            active = survivors
            if not cont:
                break

        if total:
            stats.vector_spans += 1
            stats.cells_per_span += width
            for j in active:
                c = members[j]
                self._commit_cell(
                    machines[c], plan, cellinfo[c][2], j, rho, total
                )
                rem = remaining[c] - total
                if rem <= 0:
                    del remaining[c]
                else:
                    remaining[c] = rem
        elif not any_trip:
            # Defensive livelock guard; a zero-tick fuse without a trip
            # mask should be impossible.
            for c in members:
                if c not in remaining:
                    continue
                machines[c].tick()
                if remaining[c] <= 1:
                    del remaining[c]
                else:
                    remaining[c] -= 1

    def _commit_cell(
        self, m, plan: CellPlan, lanes: List[tuple], j: int,
        rho: float, ticks: int,
    ) -> None:
        """Scatter column ``j`` back into machine ``m`` after ``ticks``.

        Shared state (eff, rho, the cache-commit buffers) is read from
        the plan *at the moment of the call*, so evicted cells must be
        committed immediately when they trip — before the kernel runs
        again and advances the shared trajectory past their divergence
        point.
        """
        n = plan.n
        st = plan.state
        cnt_i, cnt_c, cnt_a, cnt_m = m._cnt_arrays
        ips_prev = m._ips_prev
        for i, (core, proc) in enumerate(lanes):
            # .item() yields exact Python floats: machines stay
            # numpy-free even after a fused span.
            cnt_i[core] = st[i, j].item()
            cnt_c[core] = st[n + i, j].item()
            cnt_a[core] = st[2 * n + i, j].item()
            cnt_m[core] = st[3 * n + i, j].item()
            proc.progress = st[4 * n + i, j].item()
            proc.execution_misses = st[5 * n + i, j].item()
            ips_prev[core] = plan.ips_prev[core]
        m._cache_eff[:] = plan.eff
        m._rho = rho
        m.memory.observe(rho)
        m.cache.span_commit(
            plan.wbuf, plan.tbuf, plan.active_bits,
            plan.groups_commit, plan.disjoint, plan.alpha_entry,
        )
        m.clock.tick += ticks

    def _build_plan(
        self, cell: int, cellinfo: Dict[int, tuple], alloc: int
    ) -> CellPlan:
        """Build the CellPlan (and kernel) for one structural group.

        ``alloc`` is the padded cell-axis width; per-cell columns are
        (re)gathered on every span, so the plan serves any member set
        whose structural fingerprint matches.
        """
        m0 = self._machines[cell]
        _, _, lanes, active_bits, grouping = cellinfo[cell]
        config = m0.config
        num_cores = config.num_cores
        n = len(lanes)
        phases = [
            proc._spec.phases[proc._phase_index] for _, proc in lanes
        ]

        plan = CellPlan()
        plan.n = n
        plan.width = alloc
        plan.lane_cores = [core for core, _ in lanes]
        plan.isfg = [proc.is_fg for _, proc in lanes]
        plan.floor = [ph.mpki_floor for ph in phases]
        plan.delta = [ph.mpki_peak - ph.mpki_floor for ph in phases]
        plan.wscale = [ph.ways_scale for ph in phases]
        plan.sens = [ph.mem_sensitivity for ph in phases]
        gov_freqs = m0._gov_freqs
        plan.freq = [gov_freqs[core] for core, _ in lanes]
        plan.fh = [freq * 1e9 for freq in plan.freq]
        plan.cpi0 = [ph.base_cpi for ph in phases]
        plan.apki = [ph.apki for ph in phases]
        plan.prev_w = [-1.0] * n
        plan.mpki_a = [0.0] * n
        plan.coef = [0.0] * n
        plan.eff = [0.0] * num_cores  # refreshed per span
        plan.ips_prev = [0.0] * num_cores
        plan.wbuf = [0.0] * num_cores
        plan.tbuf = [0.0] * num_cores
        plan.dt = config.tick_s
        memory = m0.memory
        plan.base_ns = memory.base_latency_ns
        plan.scale = memory.contention_scale
        plan.rho_cap = memory.rho_cap
        plan.inv_peak = memory.seconds_per_miss_at_peak
        cache = m0.cache
        snap = cache._tau <= 0
        plan.alpha = None if snap else cache.inertia_alpha(config.tick_s)
        plan.alpha_entry = None if snap else (plan.dt, plan.alpha)
        plan.memo = {}
        plan.max_memo = MAX_MEMO
        plan.active_bits = active_bits
        plan.groups_commit = [
            (ways, list(cores_g)) for ways, cores_g in grouping
        ]
        plan.disjoint = True

        plan.state = _np.zeros((6 * n, alloc))
        plan.buf = _np.zeros((6 * n, 1))
        plan.prows = [plan.state[4 * n + i] for i in range(n)]
        plan.tts = [
            _np.zeros(alloc) if plan.isfg[i] else None for i in range(n)
        ]

        guard_lanes: List[int] = []
        for i, (core, proc) in enumerate(lanes):
            if proc.is_fg:
                if proc._phase_index != len(proc._spec.phases) - 1:
                    guard_lanes.append(i)
            elif proc._phase_start > 0.0 or proc._phase_end < proc._total:
                guard_lanes.append(i)
        plan.guard_lanes = guard_lanes
        plan.guard_bounds = [_np.zeros(alloc) for _ in guard_lanes]

        lane_index = {
            plan.lane_cores[i]: i for i in range(n) if plan.apki[i] > 0
        }
        shape = (
            "cell",
            num_cores,
            tuple(plan.lane_cores),
            tuple(plan.isfg),
            tuple(apki > 0 for apki in plan.apki),
            snap,
            tuple(
                (ways, tuple(lane_index[c] for c in cores_g))
                for ways, cores_g in grouping
            ),
            tuple(guard_lanes),
        )
        plan.shape = shape
        plan.kernel = compile_cell_kernel(
            shape, plan, self.stats, _np.any, _np.min
        )
        return plan
