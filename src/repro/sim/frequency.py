"""Per-core DVFS governor.

Models the Linux ``cpufreq`` userspace governor the paper drives: each core
has an independently settable frequency restricted to the machine's grades,
and a change takes effect a configurable (small) number of ticks after it
is requested.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.config import MachineConfig


class FrequencyGovernor:
    """Tracks requested and effective per-core frequencies."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        top = config.num_grades - 1
        self._grade: List[int] = [top] * config.num_cores
        self._pending: List[Tuple[int, int]] = []  # (apply_tick, core) pairs
        self._pending_grade: List[int] = [top] * config.num_cores
        # Effective frequency per core, kept in lock-step with _grade so
        # the machine's tick kernel can index a list instead of paying a
        # method call per core per tick.  The list object is stable.
        top_ghz = config.freq_grades_ghz[top]
        self._freq_ghz: List[float] = [top_ghz] * config.num_cores

    @property
    def grades_ghz(self) -> Tuple[float, ...]:
        """Available frequency grades in GHz, ascending."""
        return self._config.freq_grades_ghz

    def grade(self, core: int) -> int:
        """Effective grade index of ``core``."""
        self._check_core(core)
        return self._grade[core]

    def frequency_ghz(self, core: int) -> float:
        """Effective frequency of ``core`` in GHz."""
        return self.grades_ghz[self.grade(core)]

    def effective_frequencies(self) -> List[float]:
        """Live per-core effective frequencies in GHz (stable list).

        Hot-path accessor: callers must treat the returned list as
        read-only; it is updated in place as pending changes apply.
        """
        return self._freq_ghz

    def set_grade(self, core: int, grade: int, now_tick: int) -> None:
        """Request ``core`` to switch to ``grade``.

        The switch takes effect ``freq_transition_ticks`` later; a request
        equal to the already-pending grade is a no-op.
        """
        self._check_core(core)
        if not 0 <= grade < self._config.num_grades:
            raise ConfigurationError(
                "grade %d out of range [0, %d)" % (grade, self._config.num_grades)
            )
        if grade == self._pending_grade[core]:
            return
        self._pending_grade[core] = grade
        apply_tick = now_tick + self._config.freq_transition_ticks
        self._pending.append((apply_tick, core))

    def set_frequency(self, core: int, freq_ghz: float, now_tick: int) -> None:
        """Request an exact grade frequency for ``core``."""
        self.set_grade(core, self._config.grade_of(freq_ghz), now_tick)

    def step(self, core: int, direction: int, now_tick: int) -> bool:
        """Move ``core`` one grade up (+1) or down (-1).

        Returns True if the grade changed, False if already at the limit.
        """
        if direction not in (-1, 1):
            raise SimulationError("direction must be +1 or -1")
        current = self._pending_grade[core]
        target = current + direction
        if not 0 <= target < self._config.num_grades:
            return False
        self.set_grade(core, target, now_tick)
        return True

    def tick(self, now_tick: int) -> None:
        """Apply any pending frequency changes that are due.

        The pending list is filtered in place so the object returned by
        :meth:`pending_transitions` stays valid across ticks.
        """
        pending = self._pending
        if not pending:
            return
        grades_ghz = self._config.freq_grades_ghz
        keep = 0
        for entry in pending:
            apply_tick, core = entry
            if apply_tick <= now_tick:
                grade = self._pending_grade[core]
                self._grade[core] = grade
                self._freq_ghz[core] = grades_ghz[grade]
            else:
                pending[keep] = entry
                keep += 1
        del pending[keep:]

    def pending_transitions(self) -> List[Tuple[int, int]]:
        """Live ``(apply_tick, core)`` pairs not yet applied (stable list).

        Hot-path accessor: callers must treat the returned list as
        read-only; it is mutated in place as requests arrive and apply,
        so a reference hoisted once stays valid for the governor's
        lifetime (the machine's tick kernel uses it for its
        anything-pending check).
        """
        return self._pending

    def next_transition_tick(self) -> Optional[int]:
        """Earliest tick at which a pending DVFS change applies, or None.

        Used by the batch engine to bound its event horizon; ticks
        strictly before the returned value cannot observe a frequency
        change.
        """
        pending = self._pending
        if not pending:
            return None
        return min(apply_tick for apply_tick, _ in pending)

    def is_max(self, core: int) -> bool:
        """True when the core's pending grade is the highest."""
        return self._pending_grade[core] == self._config.num_grades - 1

    def is_min(self, core: int) -> bool:
        """True when the core's pending grade is the lowest."""
        return self._pending_grade[core] == 0

    def pending_grade(self, core: int) -> int:
        """Most recently requested grade for ``core``."""
        self._check_core(core)
        return self._pending_grade[core]

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self._config.num_cores:
            raise SimulationError("core %d out of range" % core)
