"""Process abstraction: a pinned task executing a workload's phase program.

Foreground (FG) processes execute their workload to completion over and
over (a server draining a full task queue, as in the paper's back-to-back
task executions); background (BG) processes loop over their phase program
forever.  One process is pinned per core; the Dirigent runtime daemon is
modelled separately and merely steals time from the core it shares.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError, WorkloadError
from repro.workloads.spec import PhaseSpec, WorkloadSpec

#: Process is runnable and will retire instructions each tick.
STATE_RUNNING = "running"
#: Process is stopped (SIGSTOP analogue); it retires nothing.
STATE_PAUSED = "paused"


@dataclass(frozen=True)
class ExecutionRecord:
    """Summary of one completed FG task execution.

    Attributes:
        index: Zero-based execution number of the process.
        start_s: Virtual time the execution began.
        end_s: Virtual time it completed (interpolated inside a tick).
        instructions: Instructions retired during the execution.
        llc_misses: LLC misses the FG core suffered during the execution.
    """

    index: int
    start_s: float
    end_s: float
    instructions: float
    llc_misses: float

    @property
    def duration_s(self) -> float:
        """Execution latency in seconds."""
        return self.end_s - self.start_s


class Process:
    """One pinned task, FG or BG, with phase-resolved progress state."""

    def __init__(
        self,
        pid: int,
        spec: WorkloadSpec,
        core: int,
        nice: int = 0,
        input_rng: Optional[random.Random] = None,
        start_s: float = 0.0,
    ) -> None:
        if core < 0:
            raise SimulationError("core must be >= 0")
        self.pid = pid
        self.core = core
        self.nice = nice
        self.state = STATE_RUNNING
        self._spec = spec
        self._input_rng = input_rng
        self.progress = 0.0
        self.execution_index = 0
        self.execution_start_s = start_s
        self.execution_misses = 0.0
        # Plain-attribute mirrors of spec properties, read every tick by
        # the machine's hot loop (kept in sync by switch_spec).
        self.is_fg = spec.is_foreground
        self._total = spec.total_instructions
        self._fg_cap = self._total * (1.0 - 1e-12)
        self._target_total = self._draw_target_total()
        # Cached phase lookup to avoid scanning the program every tick.
        self._phase_index = 0
        self._phase_start = 0.0
        self._phase_end = spec.phases[0].instructions
        # Bumped whenever the phase program is replaced, so span plans
        # keyed on (pid, spec epoch, phase index) can detect rotation.
        self._spec_epoch = 0

    @property
    def spec(self) -> WorkloadSpec:
        """The workload this process currently runs."""
        return self._spec

    @property
    def is_foreground(self) -> bool:
        """True for latency-critical processes."""
        return self.is_fg

    @property
    def is_running(self) -> bool:
        """True unless the process is paused."""
        return self.state == STATE_RUNNING

    @property
    def target_instructions(self) -> float:
        """Instruction count at which the current FG execution completes."""
        return self._target_total

    def pause(self) -> None:
        """Stop the process (SIGSTOP analogue)."""
        self.state = STATE_PAUSED

    def resume(self) -> None:
        """Continue a stopped process (SIGCONT analogue)."""
        self.state = STATE_RUNNING

    def current_phase(self) -> PhaseSpec:
        """Phase active at the current progress point."""
        self._sync_phase_cursor()
        return self._spec.phases[self._phase_index]

    def remaining_instructions(self) -> float:
        """Instructions left in the current FG execution."""
        if not self.is_foreground:
            raise SimulationError("remaining_instructions is FG-only")
        return max(0.0, self._target_total - self.progress)

    def advance(self, instructions: float, llc_misses: float) -> None:
        """Retire ``instructions`` and charge ``llc_misses`` to this process."""
        if instructions < 0 or llc_misses < 0:
            raise SimulationError("advance amounts must be >= 0")
        self.progress += instructions
        self.execution_misses += llc_misses

    def complete_execution(self, end_s: float) -> ExecutionRecord:
        """Close the current FG execution and start the next one.

        Returns the record of the completed execution.  The next execution
        begins immediately at ``end_s`` with fresh input-size jitter.
        """
        if not self.is_foreground:
            raise SimulationError("only FG processes complete executions")
        record = ExecutionRecord(
            index=self.execution_index,
            start_s=self.execution_start_s,
            end_s=end_s,
            instructions=self.progress,
            llc_misses=self.execution_misses,
        )
        self.execution_index += 1
        self.execution_start_s = end_s
        self.progress = 0.0
        self.execution_misses = 0.0
        self._target_total = self._draw_target_total()
        self._phase_index = 0
        self._phase_start = 0.0
        self._phase_end = self._spec.phases[0].instructions
        return record

    def switch_spec(self, spec: WorkloadSpec, now_s: float) -> None:
        """Replace the workload of a BG process (rotate mixes).

        Progress restarts from the beginning of the new phase program.
        """
        if spec.is_foreground:
            raise WorkloadError("cannot rotate onto a foreground workload")
        if self.is_foreground:
            raise SimulationError("cannot switch the spec of a FG process")
        self._spec = spec
        self._spec_epoch += 1
        self.is_fg = spec.is_foreground
        self._total = spec.total_instructions
        self._fg_cap = self._total * (1.0 - 1e-12)
        self.progress = 0.0
        self.execution_start_s = now_s
        self.execution_misses = 0.0
        self._target_total = self._draw_target_total()
        self._phase_index = 0
        self._phase_start = 0.0
        self._phase_end = spec.phases[0].instructions

    def _draw_target_total(self) -> float:
        total = self._spec.total_instructions
        noise = self._spec.input_noise
        if self._spec.is_foreground and noise > 0 and self._input_rng is not None:
            factor = max(0.5, self._input_rng.gauss(1.0, noise))
            return total * factor
        return total

    def _sync_phase_cursor(self) -> None:
        progress = self.progress
        # Fast path: the cached cursor still covers the current progress
        # point (phase windows never extend past the program total, so a
        # wrapped BG or an overrun FG cannot take this branch).
        if self._phase_start <= progress < self._phase_end:
            return
        total = self._total
        offset = progress % total if progress >= total else progress
        if not self.is_fg and progress >= total:
            # BG loops: recompute the cursor for the wrapped offset.
            if offset < self._phase_start or offset >= self._phase_end:
                self._seek(offset)
            return
        if self.is_fg:
            # Input jitter can push progress past the nominal program; the
            # tail of the last phase simply extends.
            offset = progress if progress < self._fg_cap else self._fg_cap
        if offset < self._phase_start or offset >= self._phase_end:
            self._seek(offset)

    def _seek(self, offset: float) -> None:
        start = 0.0
        for index, phase in enumerate(self._spec.phases):
            end = start + phase.instructions
            if offset < end:
                self._phase_index = index
                self._phase_start = start
                self._phase_end = end
                return
            start = end
        last = len(self._spec.phases) - 1
        self._phase_index = last
        self._phase_start = start - self._spec.phases[last].instructions
        self._phase_end = start
