"""Span-compiled fast path for the batch engine's contended spans.

The generic fused kernel in :mod:`repro.sim.batch` already amortizes
event checks across a span, but its inner loop still pays interpreted
``for i in range(n)`` dispatch, list indexing, and per-tick method calls
(``rng.gauss``, ``SharedCache.tick_update``) for every tick.  On the
contended shapes every Dirigent figure simulates (1 FG + 5 BG, jitter
on), that interpreter overhead dominates — the stationary fast path
never engages because jittered spans never converge.

This module compiles each *span shape* into a specialized kernel:

* **Span plan** — when a span opens, the gathered per-core state is
  frozen into a structure-of-arrays plan (one lane per running process)
  holding the per-lane model constants, the cache grouping, and the
  persistent per-lane miss-curve state.  Plans are cached by a value
  signature (pid, spec epoch, phase index, frequency per lane, plus the
  cache-mask epoch), so back-to-back spans over the same machine state
  skip the gather entirely and only pay a cheap revalidation.
* **Shape-specialized kernels** — for each distinct shape (lane count
  and cores, jitter on/off, FG/BG roles, cache grouping, energy on/off,
  snap-vs-inertia occupancy) a Python kernel is *generated and
  ``exec``-compiled* with every lane unrolled into locals: no lists, no
  indexing, no per-tick attribute lookups.  The OS-jitter draw inlines
  CPython's ``random.Random.gauss`` (same algorithm, same RNG stream,
  same draw order), and the cache target/inertia update inlines
  ``SharedCache.tick_update`` for the span-constant grouping.
* **Exact-input memoization** — the rho fixed point is a pure function
  of ``(rho, mpki_0..mpki_{n-1})`` once the span constants are fixed;
  jitter-free kernels memoize its outputs keyed on those exact float
  inputs, so a revisited input tuple replays bit-identical outputs
  without re-running the iterations.  Together with the per-lane
  ``prev_w`` guard (only lanes whose occupancy moved re-evaluate their
  miss curve — per-core partial recompute), this generalizes the
  whole-machine stationary fast path to per-core stationarity.
* **Clone-lane tabulation (dedup kernels)** — contended mixes run the
  same BG spec on several cores, and at sigma 0 those lanes are exact
  clones: identical phase constants, frequency, cache group, and (by
  induction from a validated span entry) identical occupancy, so every
  per-tick solver quantity — miss curve, fixed-point term, increments,
  cache target — is bit-equal across them.  For jitter-free plans with
  clone lanes a second kernel pair is compiled whose shape maps each
  lane to its *class representative*: the solver runs once per class
  and every clone reuses the representative's exact values, while
  per-lane state (progress, counters, guards, completions) keeps its
  own left-associated accumulation so results stay bit-identical.
  ``SpanPlan.run`` routes to the dedup kernel only after revalidating
  that the clone lanes' occupancy and miss-curve state still compare
  bit-equal; ``REPRO_MISSCURVE_TABLE=0`` disables the dedup kernels
  (and the exact solver tables in :mod:`repro.sim.perf`) entirely.

**Bit-exactness.**  Every generated kernel performs the same
floating-point operations in the same order as ``Machine.tick``:
sequential lane order, left-associated accumulations, identical
operator shapes.  Where a specialization drops an operation it is one
with a provably identity result (``x * 1.0`` for the jitter factor at
sigma 0, ``0.0 + x`` for the first fixed-point summand).  Memo hits
replay stored outputs of the identical pure computation.  The
equivalence suite (``tests/sim/test_batch_equivalence.py`` and
``tests/sim/test_spanplan.py``) pins all of this against the scalar
reference.

Set ``REPRO_SPAN_COMPILE=0`` to disable the compiled path (the generic
fused kernel then handles every span); this is a debugging aid, not a
supported configuration knob.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.sim.config import (
    ENV_SPAN_COMPILE,
    misscurve_table_enabled,
    span_compile_enabled,
)
from repro.sim.perf import (
    FIXED_POINT_ITERATIONS as _FIXED_POINT_ITERATIONS,
    MPKI_SCALE,
)
from repro.sim.process import STATE_RUNNING

__all__ = [
    "ENV_SPAN_COMPILE", "SpanPlan", "SpanPlanner", "SpanStats",
    "compile_cell_kernel", "consume_kernel_cache_stats",
    "generate_kernel_source", "kernel_cache_stats", "preload_kernels",
    "span_compile_enabled", "template_shapes",
]

#: Cap on cached plans per engine; machine states cycle through a
#: working set of phase combinations x frequency grades, which on
#: contended multi-phase mixes exceeds 64 (the benchmark's contended
#: section used to thrash at exactly 64 rebuilds), so this is sized to
#: hold the full cross product of a six-lane mix.
MAX_PLANS = 256

#: Cap on fixed-point memo entries per plan.
MAX_MEMO = 4096

#: CPython's ``random.gauss`` angle scale (``2*pi``); bound once so the
#: generated kernels and the interpreter use the very same constant.
TWO_PI = 2.0 * math.pi


class SpanStats:
    """Fast-path observability counters (one instance per engine).

    Attributes mirror the benchmark's ``fast_path`` block:

    * ``spans``: spans the batch engine opened (compiled or generic);
    * ``compiled_spans`` / ``generic_spans``: which kernel ran them;
    * ``compiled_ticks``: ticks executed by compiled kernels;
    * ``stationary_ticks``: ticks that skipped the model entirely
      (compiled kernels only; the generic kernel keeps its own path);
    * ``memo_hits`` / ``memo_misses``: fixed-point memo lookups;
    * ``misscurve_evals``: per-lane miss-curve re-evaluations (the
      per-core partial recomputes; lanes whose occupancy did not move
      skip this);
    * ``plan_builds`` / ``plan_reuses``: span-plan cache behavior;
    * ``kernels_compiled``: distinct span shapes compiled to code;
    * ``vector_spans``: fused multi-cell spans run by the vector
      backend's cell-axis kernels (:mod:`repro.sim.vector`);
    * ``cells_per_span``: total cells across those fused spans (the
      mean fusion width is ``cells_per_span / vector_spans``);
    * ``vector_ticks``: cell-ticks executed by cell-axis kernels (one
      fused span of ``C`` cells times ``T`` ticks counts ``C * T``);
    * ``vector_peels``: cells that diverged mid-span (phase boundary or
      execution completion) and peeled off to their per-machine batch
      engine for one tick before regrouping;
    * ``rho_iterations``: fixed-point iterations run by compiled
      kernels (cold-solved ticks times the unrolled iteration count;
      warm ticks contribute nothing);
    * ``rho_warm_hits``: compiled ticks whose rho came from a warm
      source — the stationary fast path or an exact-input memo hit —
      instead of re-running the fixed point;
    * ``table_hits``: solver evaluations served from an exact table
      instead of recomputed — clone lanes reusing their class
      representative's per-tick solve in dedup kernels;
    * ``table_builds``: exact solver tables built — clone classes a
      dedup kernel pair was compiled for;
    * ``partial_peels``: cells evicted from a fused multi-cell span
      while the surviving cells kept running fused (wholesale span
      aborts do not count).
    """

    __slots__ = (
        "spans",
        "compiled_spans",
        "generic_spans",
        "compiled_ticks",
        "stationary_ticks",
        "memo_hits",
        "memo_misses",
        "misscurve_evals",
        "plan_builds",
        "plan_reuses",
        "kernels_compiled",
        "vector_spans",
        "cells_per_span",
        "vector_ticks",
        "vector_peels",
        "rho_iterations",
        "rho_warm_hits",
        "table_hits",
        "table_builds",
        "partial_peels",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (benchmark/JSON surface)."""
        return {name: getattr(self, name) for name in self.__slots__}


# ----------------------------------------------------------------------
# Kernel code generation
# ----------------------------------------------------------------------
#
# A *shape* is everything the generated code depends on structurally:
#
#   (num_cores, cores, isfg, apki_pos, jitter, snap, groups, guard_lanes,
#    has_energy, stolen, classes)
#
# with ``cores`` the lane -> core map, ``groups`` the cache grouping in
# lane indices, ``guard_lanes`` the lanes carrying a phase-boundary
# guard, and ``classes`` the lane -> class-representative map for the
# clone-lane dedup kernels (``tuple(range(n))`` — every lane its own
# representative — for the plain kernels).  All float constants stay
# *outside* the shape — they are bound by the per-plan factory — so
# kernels are shared across plans that differ only in model constants
# (frequencies, phase parameters).

_KERNEL_CODE_CACHE: Dict[tuple, object] = {}

#: Cross-process kernel-source cache activity in this process.  The
#: sweep engine snapshots these per pack (see
#: ``consume_kernel_cache_stats``) so worker-side hits surface in
#: ``SweepResult`` without the workers touching shared state.
_KERNEL_DISK_COUNTERS: Dict[str, int] = {
    "kernel_disk_hits": 0,
    "kernel_disk_stores": 0,
    "kernels_preloaded": 0,
}


def _kernel_disk_cache():
    """The persistent kernel-source store, or None when unavailable.

    Imported lazily: :mod:`repro.sim` must stay importable without the
    experiments package (and the knob gating lives with the cache).
    """
    try:
        from repro.experiments.diskcache import get_kernel_cache
    except ImportError:  # pragma: no cover - trimmed installs
        return None
    cache = get_kernel_cache()
    return cache if cache.enabled else None


def _kernel_source(shape: tuple) -> str:
    """Source for ``shape``: loaded from the persistent cache, else
    generated (and persisted so no other process generates it again).

    Every disk load is digest-verified by the cache layer before it is
    returned, so the string handed to ``compile`` is byte-equal to a
    fresh ``generate_kernel_source(shape)`` unless the entry was
    doctored in place — which lint rule GEN003 audits for explicitly.
    """
    cache = _kernel_disk_cache()
    if cache is not None:
        source = cache.load(shape)
        if source is not None:
            _KERNEL_DISK_COUNTERS["kernel_disk_hits"] += 1
            return source
    source = generate_kernel_source(shape)
    if cache is not None:
        cache.store(shape, source)
        _KERNEL_DISK_COUNTERS["kernel_disk_stores"] += 1
    return source


def _compile_filename(shape: tuple) -> str:
    return "<spanplan-cell>" if shape and shape[0] == "cell" \
        else "<spanplan>"


def preload_kernels(extra_shapes: Tuple[tuple, ...] = ()) -> int:
    """Warm the in-process kernel code cache; returns kernels compiled.

    Compiles every valid persistent-cache entry, the shipped
    :func:`template_shapes`, and any ``extra_shapes`` the caller
    observed (e.g. the previous sweep's shapes) into
    ``_KERNEL_CODE_CACHE``.  Worker-pool initializers call this once
    per process so the first simulated span of every sweep cell finds
    its kernel already compiled.
    """
    count = 0
    cache = _kernel_disk_cache()
    if cache is not None:
        for shape, source in cache.entries():
            if shape in _KERNEL_CODE_CACHE:
                continue
            try:
                code = compile(source, _compile_filename(shape), "exec")
            except SyntaxError:  # pragma: no cover - digest-verified
                continue
            _KERNEL_CODE_CACHE[shape] = code
            _KERNEL_DISK_COUNTERS["kernel_disk_hits"] += 1
            count += 1
    for shape in tuple(template_shapes()) + tuple(extra_shapes):
        if shape in _KERNEL_CODE_CACHE:
            continue
        source = _kernel_source(shape)
        _KERNEL_CODE_CACHE[shape] = compile(
            source, _compile_filename(shape), "exec"
        )
        count += 1
    _KERNEL_DISK_COUNTERS["kernels_preloaded"] += count
    return count


def kernel_cache_stats() -> Dict[str, int]:
    """Snapshot of this process's kernel-source cache counters."""
    return dict(_KERNEL_DISK_COUNTERS)


def consume_kernel_cache_stats() -> Dict[str, int]:
    """Snapshot and zero the counters (sweep-worker delta reporting)."""
    out = dict(_KERNEL_DISK_COUNTERS)
    for name in _KERNEL_DISK_COUNTERS:
        _KERNEL_DISK_COUNTERS[name] = 0
    return out


def _generate_source(shape: tuple) -> str:
    """Generate the ``_factory``/``run`` source for one span shape.

    The emitted ``run`` performs, tick by tick, exactly the float
    operations of the scalar reference (see the per-section comments in
    :meth:`repro.sim.machine.Machine.tick` and the generic
    ``BatchEngine._run_span``), with each lane unrolled into locals.

    When ``shape`` carries the stolen flag, the span's first tick is
    peeled out of the loop and charges each lane's pending runtime
    overhead exactly as the scalar kernel does (``dt_eff = dt -
    stolen``; a fully-stolen tick skips the lane's accumulation);
    subsequent ticks are overhead-free by construction, so the main
    loop is identical to the stolen-free kernel's.

    When ``classes`` maps any lane to an earlier representative, the
    emitted solver computes each class once per tick: the clone lane's
    miss curve, fixed-point term, and per-tick increments are the
    representative's locals, which are bit-equal to what the lane would
    compute itself (same constants, same occupancy — revalidated by
    ``SpanPlan.run`` before this kernel is selected).  Per-lane state
    (progress, counters, guards, completions) keeps its own
    accumulation, so every float lands exactly where the scalar
    reference puts it.  Dedup shapes drop the fixed-point memo — in the
    contended regime occupancy moves every tick, so the memo never hits
    and only adds key-build cost — but keep the stationary fast path.
    """
    (num_cores, cores, isfg, apki_pos, jitter, snap, groups,
     guard_lanes, has_energy, stolen, classes) = shape
    n = len(cores)
    reps = [i for i in range(n) if classes[i] == i]
    dedup = len(reps) != n
    if dedup and jitter:
        raise ValueError("clone-lane dedup requires a jitter-free shape")
    group_of = {}
    for gi, (_ways, lanes_g) in enumerate(groups):
        for l in lanes_g:
            group_of[l] = gi
    for i in range(n):
        r = classes[i]
        if r > i or classes[r] != r:
            raise ValueError("classes must map lanes to earlier reps")
        if (isfg[i] != isfg[r] or apki_pos[i] != apki_pos[r]
                or group_of.get(i) != group_of.get(r)):
            raise ValueError("clone lanes must share role and cache group")
        if r != i and cores[r] >= cores[i]:
            # The clone core's occupancy assignment reads the rep
            # core's already-updated value in core order.
            raise ValueError("clone lanes must follow their rep in core order")
    lane_of_core = {cores[i]: i for i in range(n) if apki_pos[i]}
    inactive = [c for c in range(num_cores) if c not in lane_of_core]
    track_idle = (not jitter) and (not snap) and bool(inactive)
    use_memo = not jitter and not dedup
    use_stationary = not jitter

    lines: List[str] = []
    add = lines.append

    add("def _factory(plan, e_, lg_, cs_, sn_, sq_, ln_, ms_):")
    # ---- per-plan constant bindings (closure cells of ``run``) ----
    # Model constants are bound per *class representative* only: clone
    # lanes read their representative's locals, which hold bit-equal
    # values by the dedup contract (plain kernels have every lane as
    # its own representative, so this binds all of them).
    for i in range(n):
        add("    proc_%d = plan.procs[%d]" % (i, i))
        if classes[i] != i:
            continue
        add("    fl_%d = plan.floor[%d]" % (i, i))
        add("    dl_%d = plan.delta[%d]" % (i, i))
        add("    ws_%d = plan.wscale[%d]" % (i, i))
        add("    se_%d = plan.sens[%d]" % (i, i))
        add("    fq_%d = plan.freq[%d]" % (i, i))
        add("    fh_%d = plan.fh[%d]" % (i, i))
        add("    cp_%d = plan.cpi0[%d]" % (i, i))
        if apki_pos[i]:
            add("    ap_%d = plan.apki[%d]" % (i, i))
        if jitter:
            add("    rng_%d = plan.rngs[%d]" % (i, i))
            add("    rnd_%d = rng_%d.random" % (i, i))
    add("    pwa = plan.prev_w")
    add("    mpa = plan.mpki_a")
    add("    coa = plan.coef")
    add("    eff = plan.eff")
    add("    ci_a = plan.cnt_i")
    add("    cc_a = plan.cnt_c")
    add("    ca_a = plan.cnt_a")
    add("    cm_a = plan.cnt_m")
    add("    ipv = plan.ips_prev")
    add("    clock = plan.clock")
    add("    wb = plan.wbuf")
    add("    tb = plan.tbuf")
    add("    dt = plan.dt")
    add("    base_ns = plan.base_ns")
    add("    scl = plan.scale")
    add("    rho_cap = plan.rho_cap")
    add("    inv_peak = plan.inv_peak")
    if not jitter:
        # Jitter-free cycle increments are span-constant; hoisting the
        # product is bit-identical (the same two floats multiply to the
        # same float every tick).
        for i in reps:
            add("    ch_%d = fh_%d * dt" % (i, i))
    if jitter:
        add("    sigma = plan.sigma")
        add("    mu = plan.mu")
        add("    TWOPI = plan.two_pi")
    if not snap:
        add("    alpha = plan.alpha")
    if use_memo:
        add("    memo = plan.memo")
        add("    memo_get = memo.get")
        add("    maxm = plan.max_memo")
    if has_energy:
        add("    acc_e = plan.energy_accumulate")
        add("    frl = plan.freqs_list")
        add("    bsl = plan.busy_list")
    if stolen:
        add("    sta = plan.stolen")

    g_args = "".join(", g_%d" % j for j in range(len(guard_lanes)))
    add("    def run(span, rho, now%s):" % g_args)

    # ---- prologue: load mutable state into locals ----
    for c in range(num_cores):
        add("        ef_%d = eff[%d]" % (c, c))
    for i in range(n):
        if classes[i] == i:
            add("        pw_%d = pwa[%d]" % (i, i))
            add("        mp_%d = mpa[%d]" % (i, i))
            add("        co_%d = coa[%d]" % (i, i))
        add("        p_%d = proc_%d.progress" % (i, i))
        add("        em_%d = proc_%d.execution_misses" % (i, i))
        if isfg[i]:
            add("        tt_%d = proc_%d._target_total" % (i, i))
        if jitter:
            add("        gn_%d = rng_%d.gauss_next" % (i, i))
        core = cores[i]
        add("        ci_%d = ci_a[%d]" % (i, core))
        add("        cc_%d = cc_a[%d]" % (i, core))
        add("        ca_%d = ca_a[%d]" % (i, core))
        add("        cm_%d = cm_a[%d]" % (i, core))
    add("        completions = []")
    add("        executed = 0")
    add("        stat_ticks = 0")
    add("        mh = 0")
    add("        mm = 0")
    add("        mce = 0")
    add("        th = 0")
    if use_stationary:
        add("        stationary = False")

    def emit_guards(ind: str) -> None:
        for j, lane in enumerate(guard_lanes):
            add(ind + "if p_%d >= g_%d:" % (lane, j))
            add(ind + "    break")

    def emit_completion(ind: str, i: int, inst: str, mis: str,
                        ips: str) -> None:
        # Same operations/order as the scalar kernel's FG completion
        # path; locals are written back before Process methods run.
        add(ind + "rem = tt_%d - p_%d" % (i, i))
        add(ind + "if %s >= rem > 0:" % inst)
        add(ind + "    dtf = rem / %s" % ips)
        add(ind + "    msh = %s * (rem / %s)" % (mis, inst))
        add(ind + "    proc_%d.progress = p_%d" % (i, i))
        add(ind + "    proc_%d.execution_misses = em_%d" % (i, i))
        add(ind + "    proc_%d.advance(rem, msh)" % i)
        add(ind + "    completions.append((proc_%d, "
            "proc_%d.complete_execution(now * dt + dtf)))" % (i, i))
        add(ind + "    proc_%d.advance(%s - rem, %s - msh)" % (i, inst, mis))
        add(ind + "    p_%d = proc_%d.progress" % (i, i))
        add(ind + "    em_%d = proc_%d.execution_misses" % (i, i))
        add(ind + "    tt_%d = proc_%d._target_total" % (i, i))
        add(ind + "else:")
        add(ind + "    p_%d = p_%d + %s" % (i, i, inst))
        add(ind + "    em_%d = em_%d + %s" % (i, i, mis))

    ips_tuple = ", ".join("ips_%d" % i for i in range(n))
    t_tuple = ", ".join("t_%d" % i for i in range(n))
    mp_tuple = ", ".join("mp_%d" % i for i in range(n))

    def emit_fixed_point(ind: str) -> None:
        # Each class representative solves once; its fixed-point term
        # ``t_r = ips_r * mp_r * ms_`` is the exact subexpression the
        # scalar reference adds into the aggregate (same parse-tree
        # association), so accumulating ``t_r`` per *lane* in lane
        # order reproduces the scalar sum bit-for-bit, and the saved
        # term is reused for the per-tick miss increments.
        for _ in range(_FIXED_POINT_ITERATIONS):
            add(ind + "pen = base_ns * (1.0 + scl * rho / (1.0 - rho))")
            for i in range(n):
                r = classes[i]
                if i == r:
                    expr = ("fh_%d / (cp_%d + co_%d * pen * se_%d * fq_%d)"
                            % (r, r, r, r, r))
                    if jitter:
                        expr += " * jt_%d" % i
                    add(ind + "ips_%d = %s" % (r, expr))
                    add(ind + "t_%d = ips_%d * mp_%d * ms_" % (r, r, r))
                if i == 0:
                    add(ind + "tmr = t_%d" % r)
                else:
                    add(ind + "tmr = tmr + t_%d" % r)
            add(ind + "nr = tmr * inv_peak")
            add(ind + "rho = nr if nr < rho_cap else rho_cap")

    def emit_model_tick(ind: str, stolen_tick: bool) -> None:
        """One full-model tick; ``stolen_tick`` charges pending overhead."""
        # -- per-class miss curve (+ per-lane jitter draw), lane order --
        if use_stationary:
            add(ind + "wch = False")
        for i in range(n):
            if classes[i] == i:
                add(ind + "w = ef_%d" % cores[i])
                add(ind + "if w < 0.0:")
                add(ind + "    w = 0.0")
                add(ind + "if w != pw_%d:" % i)
                if use_stationary:
                    add(ind + "    wch = True")
                add(ind + "    pw_%d = w" % i)
                add(ind + "    mce += 1")
                add(ind + "    mp_%d = fl_%d + dl_%d * e_(-w / ws_%d)"
                    % (i, i, i, i))
                add(ind + "    co_%d = mp_%d * ms_" % (i, i))
            if jitter:
                # Inline CPython's random.Random.gauss (same algorithm,
                # same stream, same draw order; gauss_next synced at the
                # span boundary).
                add(ind + "z = gn_%d" % i)
                add(ind + "if z is None:")
                add(ind + "    x2 = rnd_%d() * TWOPI" % i)
                add(ind + "    g2 = sq_(-2.0 * lg_(1.0 - rnd_%d()))" % i)
                add(ind + "    z = cs_(x2) * g2")
                add(ind + "    gn_%d = sn_(x2) * g2" % i)
                add(ind + "else:")
                add(ind + "    gn_%d = None" % i)
                add(ind + "jt_%d = e_(mu + z * sigma)" % i)

        # -- rho fixed point (optionally memoized on exact inputs) --
        if use_memo:
            add(ind + "rho_in = rho")
            add(ind + "mk = (rho, %s)" % mp_tuple)
            add(ind + "hit = memo_get(mk)")
            add(ind + "if hit is None:")
            add(ind + "    mm += 1")
            emit_fixed_point(ind + "    ")
            add(ind + "    if ln_(memo) >= maxm:")
            add(ind + "        memo.clear()")
            add(ind + "    memo[mk] = (%s, %s, rho)" % (ips_tuple, t_tuple))
            add(ind + "else:")
            add(ind + "    mh += 1")
            add(ind + "    %s, %s, rho = hit" % (ips_tuple, t_tuple))
        else:
            if use_stationary:
                add(ind + "rho_in = rho")
            emit_fixed_point(ind)
        if dedup:
            # Clone lanes served their solve from the representative's
            # exact values: n - len(reps) avoided lane-solves per tick.
            add(ind + "th = th + %d" % (n - len(reps)))

        # -- per-lane accumulation, weights, FG completion --
        for i in range(n):
            r = classes[i]
            if apki_pos[i] and i == r:
                add(ind + "wt_%d = ap_%d * ips_%d" % (r, r, r))
            if stolen_tick:
                # Scalar order: weights first, then the overhead charge;
                # a fully-stolen tick skips the lane's accumulation.
                # Overhead differs per core, so the stolen tick keeps
                # per-lane arithmetic even for clone lanes.
                jt = " * jt_%d" % i if jitter else ""
                core = cores[i]
                add(ind + "st = sta[%d]" % core)
                add(ind + "if st:")
                add(ind + "    sta[%d] = 0.0" % core)
                add(ind + "de = dt - st")
                add(ind + "if de > 0.0:")
                bind = ind + "    "
                add(bind + "inst = ips_%d * de" % r)
                add(bind + "mis = t_%d * de" % r)
                add(bind + "ci_%d = ci_%d + inst" % (i, i))
                add(bind + "cc_%d = cc_%d + fh_%d%s * de" % (i, i, r, jt))
                if apki_pos[i]:
                    add(bind + "ca_%d = ca_%d + inst * ap_%d * ms_"
                        % (i, i, r))
                else:
                    add(bind + "ca_%d = ca_%d + mis" % (i, i))
                add(bind + "cm_%d = cm_%d + mis" % (i, i))
                if isfg[i]:
                    emit_completion(bind, i, "inst", "mis", "ips_%d" % r)
                else:
                    add(bind + "p_%d = p_%d + inst" % (i, i))
                    add(bind + "em_%d = em_%d + mis" % (i, i))
            else:
                # Per-tick increments are class-shared: hoist each to
                # the representative (``mi_r = t_r * dt`` keeps the
                # scalar's ``ips * mp * ms_ * dt`` association because
                # ``t_r`` *is* its left-associated prefix); per-lane
                # accumulation below stays per-lane.
                if i == r:
                    add(ind + "in_%d = ips_%d * dt" % (r, r))
                    add(ind + "mi_%d = t_%d * dt" % (r, r))
                    if apki_pos[i]:
                        add(ind + "aa_%d = in_%d * ap_%d * ms_" % (r, r, r))
                add(ind + "ci_%d = ci_%d + in_%d" % (i, i, r))
                if jitter:
                    add(ind + "cc_%d = cc_%d + fh_%d * jt_%d * dt"
                        % (i, i, r, i))
                else:
                    add(ind + "cc_%d = cc_%d + ch_%d" % (i, i, r))
                if apki_pos[i]:
                    add(ind + "ca_%d = ca_%d + aa_%d" % (i, i, r))
                else:
                    add(ind + "ca_%d = ca_%d + mi_%d" % (i, i, r))
                add(ind + "cm_%d = cm_%d + mi_%d" % (i, i, r))
                if isfg[i]:
                    emit_completion(ind, i, "in_%d" % r, "mi_%d" % r,
                                    "ips_%d" % r)
                else:
                    add(ind + "p_%d = p_%d + in_%d" % (i, i, r))
                    add(ind + "em_%d = em_%d + mi_%d" % (i, i, r))

        if has_energy:
            add(ind + "acc_e(dt, frl, bsl)")

        # -- inline SharedCache.tick_update for the span grouping --
        if track_idle:
            add(ind + "ichg = False")
        for ways, lanes_g in groups:
            terms = " + ".join("wt_%d" % classes[l] for l in lanes_g)
            add(ind + "tot = %s" % terms)
            emitted = set()
            for l in lanes_g:
                r = classes[l]
                if r in emitted:
                    continue
                emitted.add(r)
                add(ind + "tg_%d = %d * wt_%d / tot" % (r, ways, r))
        for c in range(num_cores):
            i = lane_of_core.get(c)
            if snap:
                if i is None:
                    add(ind + "ef_%d = 0.0" % c)
                else:
                    add(ind + "ef_%d = tg_%d" % (c, classes[i]))
            elif i is None:
                if track_idle:
                    add(ind + "nef = ef_%d + alpha * (0.0 - ef_%d)"
                        % (c, c))
                    add(ind + "if nef != ef_%d:" % c)
                    add(ind + "    ichg = True")
                    add(ind + "ef_%d = nef" % c)
                else:
                    add(ind + "ef_%d = ef_%d + alpha * (0.0 - ef_%d)"
                        % (c, c, c))
            elif classes[i] != i:
                # Clone core: its occupancy equals the representative
                # core's (bit-equal at span entry by revalidation, and
                # both receive the identical update each tick), so the
                # inertia step is assignment, not recomputation.
                add(ind + "ef_%d = ef_%d" % (c, cores[classes[i]]))
            else:
                add(ind + "ef_%d = ef_%d + alpha * (tg_%d - ef_%d)"
                    % (c, c, i, c))

        add(ind + "now += 1")
        add(ind + "executed += 1")

    # ================= peeled stolen tick =================
    if stolen:
        # Only the span's first tick can carry overhead (callbacks never
        # run mid-span); peeling it keeps the main loop overhead-free.
        add("        while executed < span:")
        emit_guards("            ")
        emit_model_tick("            ", True)
        add("            break")
        add("        if executed and not completions:")
        m0 = "            "
    else:
        m0 = "        "
    m1 = m0 + "    "
    m2 = m1 + "    "

    # ================= full-model loop =================
    add(m0 + "while executed < span:")
    emit_guards(m1)
    emit_model_tick(m1, False)
    add(m1 + "if completions:")
    add(m1 + "    break")

    # -- stationarity: per-lane occupancy, rho, and (when tracked) idle
    #    occupancy are all at their exact float fixed points.  The
    #    stationary increments are exactly this tick's per-class
    #    increments (``in_r`` / ``ch_r`` / ``aa_r`` / ``mi_r``), already
    #    in locals — entry costs nothing.
    if use_stationary:
        cond = "not wch and rho == rho_in"
        if track_idle:
            cond += " and not ichg"
        add(m1 + "if %s:" % cond)
        add(m2 + "stationary = True")
        add(m2 + "break")

    # ================= stationary loop =================
    if use_stationary:
        add(m0 + "if stationary:")
        add(m1 + "while executed < span:")
        emit_guards(m2)
        for i in range(n):
            r = classes[i]
            add(m2 + "ci_%d = ci_%d + in_%d" % (i, i, r))
            add(m2 + "cc_%d = cc_%d + ch_%d" % (i, i, r))
            if apki_pos[i]:
                add(m2 + "ca_%d = ca_%d + aa_%d" % (i, i, r))
            else:
                add(m2 + "ca_%d = ca_%d + mi_%d" % (i, i, r))
            add(m2 + "cm_%d = cm_%d + mi_%d" % (i, i, r))
            if isfg[i]:
                emit_completion(m2, i, "in_%d" % r, "mi_%d" % r,
                                "ips_%d" % r)
            else:
                add(m2 + "p_%d = p_%d + in_%d" % (i, i, r))
                add(m2 + "em_%d = em_%d + mi_%d" % (i, i, r))
        if has_energy:
            add(m2 + "acc_e(dt, frl, bsl)")
        add(m2 + "now += 1")
        add(m2 + "executed += 1")
        add(m2 + "stat_ticks += 1")
        add(m2 + "if completions:")
        add(m2 + "    break")

    # ---- epilogue: write mutable state back ----
    add("        if executed:")
    for c in range(num_cores):
        add("            eff[%d] = ef_%d" % (c, c))
    for i in range(n):
        r = classes[i]
        # Clone lanes persist their representative's miss-curve state
        # (bit-equal by the dedup contract), keeping the plan arrays
        # valid for whichever kernel variant runs the next span.
        add("            pwa[%d] = pw_%d" % (i, r))
        add("            mpa[%d] = mp_%d" % (i, r))
        add("            coa[%d] = co_%d" % (i, r))
        add("            proc_%d.progress = p_%d" % (i, i))
        add("            proc_%d.execution_misses = em_%d" % (i, i))
        if jitter:
            add("            rng_%d.gauss_next = gn_%d" % (i, i))
        core = cores[i]
        add("            ci_a[%d] = ci_%d" % (core, i))
        add("            cc_a[%d] = cc_%d" % (core, i))
        add("            ca_a[%d] = ca_%d" % (core, i))
        add("            cm_a[%d] = cm_%d" % (core, i))
        add("            ipv[%d] = ips_%d" % (core, r))
    for c in range(num_cores):
        i = lane_of_core.get(c)
        if i is None:
            add("            wb[%d] = 0.0" % c)
            add("            tb[%d] = 0.0" % c)
        else:
            add("            wb[%d] = wt_%d" % (c, classes[i]))
            add("            tb[%d] = tg_%d" % (c, classes[i]))
    add("            clock.tick = now")
    add("        return executed, rho, stat_ticks, mh, mm, mce, th, completions")
    add("    return run")
    add("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Cell-axis kernel code generation (vector backend)
# ----------------------------------------------------------------------
#
# A *cell shape* batches the same span across C independent machines
# ("cells") whose shared model state — per-lane phase constants,
# occupancy, rho, frequencies — is bit-identical:
#
#   ("cell", num_cores, cores, isfg, apki_pos, snap, groups, guard_lanes)
#
# Cell kernels are always jitter-free, energy-free, and stolen-free
# (the vector driver only fuses machines that qualify).  Because every
# per-tick model quantity (miss curves, the rho fixed point, the cache
# occupancy update) is a pure function of the *shared* state, it is
# computed once per tick in scalar Python floats — the very same
# emission as the span kernels — and only the per-cell accumulation
# crosses into array land: the per-lane increments land in a (6n, 1)
# column buffer and a single broadcast ``st += bu`` applies the tick to
# every cell's counters, progress, and misses at once.  Elementwise
# float64 array addition is IEEE-identical to the scalar ``a + b``, and
# each cell's row accumulates left-associated in tick order, so the
# fused path is bit-identical to advancing each cell alone.
#
# Divergence is handled by *trip-and-discard*: phase-boundary guards
# and FG completion predicates are evaluated across the cell axis
# before a tick is applied; if any cell trips, the kernel discards the
# tick (restoring rho) and returns the boolean trip mask.  The driver
# replays that one tick through each tripped cell's own batch engine —
# bit-identical by the span-equivalence contract — while the rest stay
# fused.


def _generate_cell_source(shape: tuple) -> str:
    """Generate the ``_factory``/``run`` source for one cell shape.

    The emitted ``run(span, rho, g_0...)`` advances up to ``span``
    ticks of C cells at once.  Guard bounds ``g_j`` arrive as per-cell
    arrays (length C) because wrapped BG phase offsets differ across
    cells even when the model state agrees.  Returns ``(executed, rho,
    stat_ticks, mh, mm, mce, trip)`` where ``trip`` is ``None`` or a
    per-cell boolean mask of the cells that must peel off.

    The stationary fast path amortizes trip checks: once increments
    are span-constant, a conservatively under-estimated safe tick
    count (0.1% margin against accumulated rounding, minus two ticks)
    runs check-free — the per-tick cost collapses to one broadcast
    array addition.
    """
    (_tag, num_cores, cores, isfg, apki_pos, snap, groups,
     guard_lanes) = shape
    n = len(cores)
    lane_of_core = {cores[i]: i for i in range(n) if apki_pos[i]}
    inactive = [c for c in range(num_cores) if c not in lane_of_core]
    track_idle = (not snap) and bool(inactive)
    fg_lanes = [i for i in range(n) if isfg[i]]

    lines: List[str] = []
    add = lines.append

    add("def _factory(plan, e_, ln_, ms_, an_, mn_):")
    # ---- per-plan constant bindings (closure cells of ``run``) ----
    for i in range(n):
        add("    fl_%d = plan.floor[%d]" % (i, i))
        add("    dl_%d = plan.delta[%d]" % (i, i))
        add("    ws_%d = plan.wscale[%d]" % (i, i))
        add("    se_%d = plan.sens[%d]" % (i, i))
        add("    fq_%d = plan.freq[%d]" % (i, i))
        add("    fh_%d = plan.fh[%d]" % (i, i))
        add("    cp_%d = plan.cpi0[%d]" % (i, i))
        if apki_pos[i]:
            add("    ap_%d = plan.apki[%d]" % (i, i))
    add("    pwa = plan.prev_w")
    add("    mpa = plan.mpki_a")
    add("    coa = plan.coef")
    add("    eff = plan.eff")
    add("    ipv = plan.ips_prev")
    add("    wb = plan.wbuf")
    add("    tb = plan.tbuf")
    add("    dt = plan.dt")
    add("    base_ns = plan.base_ns")
    add("    scl = plan.scale")
    add("    rho_cap = plan.rho_cap")
    add("    inv_peak = plan.inv_peak")
    if not snap:
        add("    alpha = plan.alpha")
    add("    memo = plan.memo")
    add("    memo_get = memo.get")
    add("    maxm = plan.max_memo")
    # Cell-axis state: st stacks [CI; CC; CA; CM; P; EM] lane-blocks as
    # a (6n, C) array; bu is the (6n, 1) per-tick increment column.
    add("    st_c = plan.state")
    add("    bu = plan.buf")
    for i in range(n):
        add("    pr_%d = plan.prows[%d]" % (i, i))
    for i in fg_lanes:
        add("    tt_%d = plan.tts[%d]" % (i, i))

    g_args = "".join(", g_%d" % j for j in range(len(guard_lanes)))
    add("    def run(span, rho%s):" % g_args)

    # ---- prologue: load shared mutable state into locals ----
    for c in range(num_cores):
        add("        ef_%d = eff[%d]" % (c, c))
    for i in range(n):
        add("        pw_%d = pwa[%d]" % (i, i))
        add("        mp_%d = mpa[%d]" % (i, i))
        add("        co_%d = coa[%d]" % (i, i))
    add("        trip = None")
    # tck reports the trip kind: True for an FG completion (the cell
    # must replay the divergent tick through the scalar kernel), False
    # for a phase-boundary guard (a cursor resync suffices — the next
    # tick is a normal model tick under the advanced cursor).
    add("        tck = False")
    # ``st += bu`` rebinds: st must be a local, seeded from the closure
    # cell (the ndarray itself is shared; += mutates it in place).
    add("        st = st_c")
    add("        executed = 0")
    add("        stat_ticks = 0")
    add("        mh = 0")
    add("        mm = 0")
    add("        mce = 0")
    add("        stationary = False")

    def emit_guard_trip(ind: str) -> None:
        # Same top-of-tick position and predicate as the span kernels'
        # ``if p_l >= g_j: break``, evaluated across the cell axis.
        if not guard_lanes:
            return
        for j, lane in enumerate(guard_lanes):
            if j == 0:
                add(ind + "tm = pr_%d >= g_%d" % (lane, j))
            else:
                add(ind + "tm = tm | (pr_%d >= g_%d)" % (lane, j))
        add(ind + "if an_(tm):")
        add(ind + "    trip = tm")
        add(ind + "    break")

    ips_tuple = ", ".join("ips_%d" % i for i in range(n))
    mp_tuple = ", ".join("mp_%d" % i for i in range(n))

    def emit_fixed_point(ind: str) -> None:
        for _ in range(_FIXED_POINT_ITERATIONS):
            add(ind + "pen = base_ns * (1.0 + scl * rho / (1.0 - rho))")
            for i in range(n):
                add(ind + "ips_%d = fh_%d / (cp_%d + co_%d * pen * "
                    "se_%d * fq_%d)" % (i, i, i, i, i, i))
                if i == 0:
                    add(ind + "tmr = ips_0 * mp_0 * ms_")
                else:
                    add(ind + "tmr = tmr + ips_%d * mp_%d * ms_" % (i, i))
            add(ind + "nr = tmr * inv_peak")
            add(ind + "rho = nr if nr < rho_cap else rho_cap")

    def emit_completion_trip(ind: str, inc: str) -> None:
        # The span kernels' FG completion predicate ``inst >= rem > 0``
        # across the cell axis, with ``rem`` evaluated on pre-add
        # progress exactly as the scalar kernel evaluates it.
        if not fg_lanes:
            return
        for j, i in enumerate(fg_lanes):
            add(ind + "rm = tt_%d - pr_%d" % (i, i))
            expr = "(rm <= %s) & (rm > 0.0)" % (inc % i)
            if j == 0:
                add(ind + "cmv = %s" % expr)
            else:
                add(ind + "cmv = cmv | (%s)" % expr)
        add(ind + "if an_(cmv):")
        add(ind + "    trip = cmv")
        add(ind + "    tck = True")

    m1 = "            "
    m2 = m1 + "    "

    # ================= full-model loop =================
    add("        while executed < span:")
    emit_guard_trip(m1)

    # -- shared miss curves (same emission as the span kernels) --
    add(m1 + "wch = False")
    for i in range(n):
        add(m1 + "w = ef_%d" % cores[i])
        add(m1 + "if w < 0.0:")
        add(m1 + "    w = 0.0")
        add(m1 + "if w != pw_%d:" % i)
        add(m1 + "    wch = True")
        add(m1 + "    pw_%d = w" % i)
        add(m1 + "    mce += 1")
        add(m1 + "    mp_%d = fl_%d + dl_%d * e_(-w / ws_%d)"
            % (i, i, i, i))
        add(m1 + "    co_%d = mp_%d * ms_" % (i, i))

    # -- shared rho fixed point, memoized on exact inputs --
    add(m1 + "rho_in = rho")
    add(m1 + "mk = (rho, %s)" % mp_tuple)
    add(m1 + "hit = memo_get(mk)")
    add(m1 + "if hit is None:")
    add(m1 + "    mm += 1")
    emit_fixed_point(m1 + "    ")
    add(m1 + "    if ln_(memo) >= maxm:")
    add(m1 + "        memo.clear()")
    add(m1 + "    memo[mk] = (%s, rho)" % ips_tuple)
    add(m1 + "else:")
    add(m1 + "    mh += 1")
    add(m1 + "    %s, rho = hit" % ips_tuple)

    # -- per-lane shared increments, completion trip, tick apply --
    for i in range(n):
        add(m1 + "in_%d = ips_%d * dt" % (i, i))
        add(m1 + "mi_%d = ips_%d * mp_%d * ms_ * dt" % (i, i, i))
    if fg_lanes:
        emit_completion_trip(m1, "in_%d")
        # Discard the tick: rho reverts to its entering value; the
        # locally recomputed miss curves are pure functions of the
        # unchanged occupancy, so dropping them is bit-neutral.
        add(m1 + "    rho = rho_in")
        add(m1 + "    break")
    for i in range(n):
        add(m1 + "cy_%d = fh_%d * dt" % (i, i))
        if apki_pos[i]:
            add(m1 + "ac_%d = in_%d * ap_%d * ms_" % (i, i, i))
            add(m1 + "wt_%d = ap_%d * ips_%d" % (i, i, i))
        else:
            add(m1 + "ac_%d = mi_%d" % (i, i))
    buf_vals = (
        ["in_%d" % i for i in range(n)]
        + ["cy_%d" % i for i in range(n)]
        + ["ac_%d" % i for i in range(n)]
        + ["mi_%d" % i for i in range(n)]
        + ["in_%d" % i for i in range(n)]
        + ["mi_%d" % i for i in range(n)]
    )
    add(m1 + "bu[:, 0] = (%s)" % ", ".join(buf_vals))
    add(m1 + "st += bu")

    # -- inline SharedCache.tick_update for the span grouping --
    if track_idle:
        add(m1 + "ichg = False")
    for ways, lanes_g in groups:
        terms = " + ".join("wt_%d" % l for l in lanes_g)
        add(m1 + "tot = %s" % terms)
        for l in lanes_g:
            add(m1 + "tg_%d = %d * wt_%d / tot" % (l, ways, l))
    for c in range(num_cores):
        i = lane_of_core.get(c)
        if snap:
            if i is None:
                add(m1 + "ef_%d = 0.0" % c)
            else:
                add(m1 + "ef_%d = tg_%d" % (c, i))
        elif i is None:
            if track_idle:
                add(m1 + "nef = ef_%d + alpha * (0.0 - ef_%d)" % (c, c))
                add(m1 + "if nef != ef_%d:" % c)
                add(m1 + "    ichg = True")
                add(m1 + "ef_%d = nef" % c)
            else:
                add(m1 + "ef_%d = ef_%d + alpha * (0.0 - ef_%d)"
                    % (c, c, c))
        else:
            add(m1 + "ef_%d = ef_%d + alpha * (tg_%d - ef_%d)"
                % (c, c, i, c))
    add(m1 + "executed += 1")

    # -- stationarity entry: shared state at its exact fixed point --
    cond = "not wch and rho == rho_in"
    if track_idle:
        cond += " and not ichg"
    add(m1 + "if %s:" % cond)
    for i in range(n):
        add(m2 + "ii_%d = ips_%d * dt" % (i, i))
        add(m2 + "ic_%d = fh_%d * dt" % (i, i))
        add(m2 + "im_%d = ips_%d * mp_%d * ms_ * dt" % (i, i, i))
        if apki_pos[i]:
            add(m2 + "ia_%d = ii_%d * ap_%d * ms_" % (i, i, i))
        else:
            add(m2 + "ia_%d = im_%d" % (i, i))
    stat_vals = (
        ["ii_%d" % i for i in range(n)]
        + ["ic_%d" % i for i in range(n)]
        + ["ia_%d" % i for i in range(n)]
        + ["im_%d" % i for i in range(n)]
        + ["ii_%d" % i for i in range(n)]
        + ["im_%d" % i for i in range(n)]
    )
    add(m2 + "bu[:, 0] = (%s)" % ", ".join(stat_vals))
    add(m2 + "stationary = True")
    add(m2 + "break")

    # ================= stationary loop =================
    add("        if stationary:")
    add(m1 + "while executed < span:")
    emit_guard_trip(m2)
    if fg_lanes:
        emit_completion_trip(m2, "ii_%d")
        add(m2 + "    break")
    add(m2 + "st += bu")
    add(m2 + "executed += 1")
    add(m2 + "stat_ticks += 1")
    # Amortized check-free block: the next trip needs at least
    # margin/increment more ticks; 0.1% slack plus two ticks bounds
    # the accumulated rounding of the sequential adds (relative error
    # < span * 2^-52, nine orders of magnitude below the slack), so
    # running that many ticks without checks cannot overshoot a trip.
    add(m2 + "k = span - executed")
    for j, lane in enumerate(guard_lanes):
        add(m2 + "kg = (mn_(g_%d - pr_%d) / ii_%d) * 0.999 - 2.0"
            % (j, lane, lane))
        add(m2 + "if kg < k:")
        add(m2 + "    k = kg")
    for i in fg_lanes:
        add(m2 + "kc = ((mn_(tt_%d - pr_%d) - ii_%d) / ii_%d)"
            " * 0.999 - 2.0" % (i, i, i, i))
        add(m2 + "if kc < k:")
        add(m2 + "    k = kc")
    add(m2 + "while k >= 1.0:")
    add(m2 + "    st += bu")
    add(m2 + "    executed += 1")
    add(m2 + "    stat_ticks += 1")
    add(m2 + "    k = k - 1.0")

    # ---- epilogue: write shared state back (per-cell state lives in
    # ``st`` and is scattered by the driver) ----
    add("        if executed:")
    for c in range(num_cores):
        add("            eff[%d] = ef_%d" % (c, c))
    for i in range(n):
        add("            pwa[%d] = pw_%d" % (i, i))
        add("            mpa[%d] = mp_%d" % (i, i))
        add("            coa[%d] = co_%d" % (i, i))
        add("            ipv[%d] = ips_%d" % (cores[i], i))
    for c in range(num_cores):
        i = lane_of_core.get(c)
        if i is None:
            add("            wb[%d] = 0.0" % c)
            add("            tb[%d] = 0.0" % c)
        else:
            add("            wb[%d] = wt_%d" % (c, i))
            add("            tb[%d] = tg_%d" % (c, i))
    add("        return executed, rho, stat_ticks, mh, mm, mce, trip, tck")
    add("    return run")
    add("")
    return "\n".join(lines)


def compile_cell_kernel(shape: tuple, plan, stats: SpanStats,
                        an_, mn_):
    """Compile (or fetch) the cell-axis kernel for ``shape``.

    ``plan`` must expose the attribute surface the factory binds
    (shared model constants as in :class:`SpanPlan`, plus ``state`` /
    ``buf`` / ``prows`` / ``tts`` for the cell axis).  ``an_`` and
    ``mn_`` are the array ``any`` / ``min`` reductions — passed in by
    the vector driver so this module never imports numpy.
    """
    code = _KERNEL_CODE_CACHE.get(shape)
    if code is None:
        source = _kernel_source(shape)
        code = compile(source, "<spanplan-cell>", "exec")
        _KERNEL_CODE_CACHE[shape] = code
        stats.kernels_compiled += 1
    namespace: Dict[str, object] = {"__builtins__": {}}
    exec(code, namespace)
    return namespace["_factory"](plan, math.exp, len, MPKI_SCALE, an_, mn_)


# ----------------------------------------------------------------------
# Kernel-template entry points (audit surface)
# ----------------------------------------------------------------------
#
# ``repro lint``'s GEN rules parse the exact source strings this module
# hands to ``exec()`` and verify the codegen contract on the AST (call
# allowlist, no global name resolution, in-loop attribute discipline).
# These two functions are that audit surface: ``template_shapes`` spans
# the generator's structural feature matrix, ``generate_kernel_source``
# renders any shape to source without compiling it.


def generate_kernel_source(shape: tuple) -> str:
    """Render the kernel source for one shape, without compiling.

    Span shapes are the 11-tuple ``(num_cores, cores, isfg, apki_pos,
    jitter, snap, groups, guard_lanes, has_energy, stolen, classes)``
    described above (``groups`` must partition the ``apki_pos`` lanes;
    ``classes`` maps each lane to its clone-class representative, the
    identity for plain kernels); cell shapes are the ``("cell",
    num_cores, cores, isfg, apki_pos, snap, groups, guard_lanes)``
    tuples of the vector backend.  Either way
    this is the exact string the compile helpers would
    ``exec``-compile — the static analyzer and the tests audit it
    directly.
    """
    if shape and shape[0] == "cell":
        return _generate_cell_source(shape)
    return _generate_source(shape)


#: Field names of the 11-tuple span shapes, positionally.  ``repro
#: lint``'s ``COV002`` asserts every ``template_shapes()`` entry has
#: exactly this arity, so adding a shape axis without extending this
#: registry (and the audit) fails lint instead of silently compiling
#: kernels the analyzer no longer understands.
SHAPE_FIELDS = (
    "num_cores", "cores", "isfg", "apki_pos", "jitter", "snap",
    "groups", "guard_lanes", "has_energy", "stolen", "classes",
)

#: Field names of the 8-tuple cell-axis shapes (``shape[0] == "cell"``).
CELL_SHAPE_FIELDS = (
    "kind", "num_cores", "cores", "isfg", "apki_pos", "snap",
    "groups", "guard_lanes",
)

#: Machine-readable registry of the scalar hot-state surface the
#: span-compiled kernels mirror, in the same key naming as
#: :data:`repro.sim.vector.CELL_COLUMNS` (plain machine attributes,
#: ``process.<member>`` entries, ``<name>()`` state-advancing
#: callables).  ``COV002`` cross-checks it against the AST def-use
#: extraction of ``Machine.tick`` in both directions, so a new
#: hot-state mutation the generated kernels do not carry — or a stale
#: registry row — fails lint before any benchmark can diverge.
KERNEL_STATE = {
    "_cnt_arrays": "counter arrays bound as ci_/cc_/ca_/cm_ closures",
    "process.progress": "per-lane progress writes in the lane loop",
    "process.execution_misses": "per-lane miss writes in the lane loop",
    "process.advance()": "completion path calls it inside the kernel",
    "process.complete_execution()": (
        "completion path calls it inside the kernel"
    ),
    "process._sync_phase_cursor()": (
        "cursors synced while planning (_build_plan lane gather)"
    ),
    "process.current_phase()": (
        "phase constants are closure-bound plan columns"
    ),
    "_ips_prev": "committed from plan.ips_prev by SpanPlan.run",
    "_rho": "committed by SpanPlan.run after the span",
    "memory": "m.memory.observe(rho) committed by SpanPlan.run",
    "cache": "m.cache.span_commit(...) committed by SpanPlan.run",
    "_cache_tick()": "span_commit applies the span's occupancy update",
    "clock": "m.clock.tick advanced by the committed span length",
    "_settled": "plans are built only on settled machines",
    "_completion_listeners": "SpanPlan.run fires listeners on completion",
    "governor": "event ticks stay outside spans (batch-engine horizon)",
    "timers": "event ticks stay outside spans (batch-engine horizon)",
    "_energy": "acc_e closure accumulates per span tick",
    "_stolen_s": "the stolen-variant kernel peels the charged tick",
    "_gauss_fns": "per-lane rnd_<i> draws replay CPython's gauss",
}


def template_shapes() -> Tuple[tuple, ...]:
    """Representative span shapes covering the generator's feature matrix.

    One shape per structurally distinct code path: jitter on/off (off
    enables the fixed-point memo and the stationary loop), snap vs
    inertia occupancy (inertia with an idle core enables idle-change
    tracking), peeled stolen-tick prologue, energy accounting, FG and
    BG phase guards, a zero-``apki`` lane, multi-group cache
    partitions, and clone-lane dedup (non-identity ``classes`` folding
    the solver per class).  ``repro lint`` audits the source generated
    for every one of these, so a codegen change that breaks the
    contract on any branch fails lint even if no benchmark happens to
    exercise it.
    """
    six = (0, 1, 2, 3, 4, 5)
    fg_of_six = (True, False, False, False, False, False)
    ident6 = tuple(range(6))
    return (
        # Canonical contended figure: 1 FG + 5 BG, jitter, inertia,
        # energy accounting, FG + BG guards, one shared cache group.
        (6, six, fg_of_six, (True,) * 6, True, False,
         ((16, six),), (0, 1), True, False, ident6),
        # Jitter-free memo path with an idle core (inertia occupancy
        # decays toward zero, so idle-change tracking engages).
        (6, (0, 1, 2, 3, 4), (True, False, False, False, False),
         (True,) * 5, False, False, ((16, (0, 1, 2, 3, 4)),), (0,),
         False, False, tuple(range(5))),
        # Snap occupancy, peeled stolen tick, split cache groups, no
        # guards (every lane pinned to a full-program phase).
        (6, six, fg_of_six, (True,) * 6, False, True,
         ((8, (0, 1, 2)), (8, (3, 4, 5))), (), False, True, ident6),
        # Jitter + snap + stolen + energy together.
        (6, six, fg_of_six, (True,) * 6, True, True,
         ((16, six),), (0,), True, True, ident6),
        # A zero-apki BG lane: no cache weight, miss accumulation in
        # the access counter, its core treated as cache-idle.
        (6, six, fg_of_six, (True, True, True, True, True, False),
         False, False, ((16, (0, 1, 2, 3, 4)),), (0, 5), True, False,
         tuple(range(6))),
        # Minimal standalone FG (the baseline/standalone measurements).
        (6, (0,), (True,), (True,), False, True, ((16, (0,)),), (0,),
         False, False, (0,)),
        # Clone-lane dedup: the sigma-0 contended mix where the five
        # BG lanes are one clone class — the solver-bound regime the
        # exact tabulation exists for (inertia occupancy, energy off).
        (6, six, fg_of_six, (True,) * 6, False, False,
         ((16, six),), (0, 1), False, False, (0, 1, 1, 1, 1, 1)),
        # Dedup + snap occupancy + peeled stolen tick (the stolen tick
        # keeps per-lane arithmetic while the solver stays per-class).
        (6, six, fg_of_six, (True,) * 6, False, True,
         ((16, six),), (0,), False, True, (0, 1, 1, 1, 1, 1)),
        # ---- cell-axis shapes (vector backend) ----
        # Canonical contended fusion: 1 FG + 5 BG across cells,
        # inertia occupancy, FG + BG guards, one shared group.
        ("cell", 6, six, fg_of_six, (True,) * 6, False,
         ((16, six),), (0, 1)),
        # Minimal standalone FG seed batch (the Monte-Carlo shape the
        # multi_cell benchmark measures): snap occupancy, FG guard.
        ("cell", 6, (0,), (True,), (True,), True, ((16, (0,)),), (0,)),
        # Idle core under inertia (idle-change tracking engages) with
        # split cache groups and no guards.
        ("cell", 6, (0, 1, 2, 3, 4), (True, False, False, False, False),
         (True,) * 5, False, ((8, (0, 1, 2)), (8, (3, 4))), ()),
        # A zero-apki BG lane plus snap occupancy.
        ("cell", 6, six, fg_of_six,
         (True, True, True, True, True, False), True,
         ((16, (0, 1, 2, 3, 4)),), (0, 5)),
    )


# ----------------------------------------------------------------------
# Span plans
# ----------------------------------------------------------------------


class SpanPlan:
    """Structure-of-arrays snapshot of one span's model inputs.

    Lane ``i`` is the ``i``-th running process in core order.  The
    constant arrays feed the generated kernel's factory; ``prev_w`` /
    ``mpki_a`` / ``coef`` persist *across* spans of the same plan — a
    lane whose occupancy did not move between spans keeps its memoized
    miss-curve outputs (recomputing a pure function on an equal input
    is bit-identical, so skipping it is too).
    """

    __slots__ = (
        "machine", "stats", "kernel", "kernel_stolen", "kernel_dedup",
        "kernel_dedup_stolen", "clone_checks", "stolen", "energy",
        "procs", "rngs", "floor", "delta", "wscale", "sens", "freq",
        "fh", "cpi0", "apki", "prev_w", "mpki_a", "coef",
        "eff", "cnt_i", "cnt_c", "cnt_a", "cnt_m", "ips_prev", "clock",
        "dt", "sigma", "mu", "alpha", "base_ns", "scale", "rho_cap",
        "inv_peak", "memo", "max_memo", "two_pi",
        "energy_accumulate", "freqs_list", "busy_list",
        "wbuf", "tbuf", "active_bits", "groups_commit", "disjoint",
        "guard_procs",
    )

    def run(self, span: int, stolen: bool = False) -> int:
        """Run up to ``span`` event-free ticks; returns ticks executed.

        Mirrors the generic ``BatchEngine._run_span`` contract: may
        return early when a guard fires or an FG execution completes;
        rho observation, cache write-back, and completion listeners all
        happen here, in the scalar kernel's order.  Pass ``stolen=True``
        when a core carries stolen overhead time: that kernel variant
        peels the span's first tick and charges the overhead exactly as
        the scalar kernel would.

        When the plan compiled clone-dedup kernels, they are selected
        only after revalidating the dedup invariant: every clone lane's
        occupancy and persistent miss-curve state must still compare
        bit-equal to its representative's (other plans run between
        spans of this one and update per-core state along their own
        trajectories, so equality is checked, never assumed).
        """
        kernel = None
        if self.kernel_dedup is not None:
            eff = self.eff
            pwa = self.prev_w
            mpa = self.mpki_a
            for r, i, rc, ic in self.clone_checks:
                if (eff[rc] != eff[ic] or pwa[r] != pwa[i]
                        or mpa[r] != mpa[i]):
                    break
            else:
                kernel = self.kernel_dedup_stolen if stolen \
                    else self.kernel_dedup
        if kernel is None:
            kernel = self.kernel_stolen if stolen else self.kernel
        m = self.machine
        if not m._settled:
            m.settle_cache()
        if self.freqs_list is not None:
            # Re-snapshot so idle cores' frequencies match the list the
            # scalar kernel would rebuild each tick.
            self.freqs_list[:] = m._gov_freqs
        bounds = []
        for proc, is_fg in self.guard_procs:
            if is_fg:
                bounds.append(proc._phase_end)
            else:
                progress = proc.progress
                total = proc._total
                offset = progress % total if progress >= total else progress
                bounds.append(progress - offset + proc._phase_end)
        executed, rho, stat, mh, mm, mce, th, completions = kernel(
            span, m._rho, m.clock.tick, *bounds
        )
        stats = self.stats
        stats.memo_hits += mh
        stats.memo_misses += mm
        stats.misscurve_evals += mce
        stats.table_hits += th
        if executed:
            stats.compiled_ticks += executed
            stats.stationary_ticks += stat
            # Warm ticks took rho from the stationary path or an exact
            # memo hit; everything else ran the unrolled fixed point.
            warm = stat + mh
            stats.rho_warm_hits += warm
            stats.rho_iterations += _FIXED_POINT_ITERATIONS * (executed - warm)
            m._rho = rho
            m.memory.observe(rho)
            m.cache.span_commit(
                self.wbuf, self.tbuf, self.active_bits,
                self.groups_commit, self.disjoint,
                None if self.alpha is None else (self.dt, self.alpha),
            )
            if completions:
                listeners = m._completion_listeners
                for proc, record in completions:
                    for listener in listeners:
                        listener(proc, record)
        return executed


def _build_plan(machine, stats: SpanStats) -> Optional[SpanPlan]:
    """Compile the machine's current running set into a SpanPlan.

    Returns None for shapes the compiled path does not cover (no
    running lanes, overlapping cache-mask groups, or a non-standard
    jitter RNG); the generic fused kernel handles those.
    """
    m = machine
    config = m.config
    num_cores = config.num_cores
    gov_freqs = m._gov_freqs
    lanes = []
    for core, proc in enumerate(m._procs_by_core):
        if proc is None or proc.state != STATE_RUNNING:
            continue
        lanes.append((core, proc, proc._spec.phases[proc._phase_index]))
    n = len(lanes)
    if n == 0:
        return None
    sigma = m._sigma
    jitter = sigma > 0.0
    if jitter:
        for core, _, _ in lanes:
            # The inline gauss replays CPython's exact algorithm; any
            # substituted RNG type falls back to the generic kernel.
            if type(m._jitter_rngs[core]) is not random.Random:
                return None
    active_bits = 0
    lane_index = {}
    for i, (core, proc, phase) in enumerate(lanes):
        lane_index[core] = i
        if phase.apki > 0:
            active_bits |= 1 << core
    groups_cores, disjoint = m.cache.span_grouping(active_bits)
    if not disjoint:
        return None

    plan = SpanPlan()
    plan.machine = m
    plan.stats = stats
    plan.procs = [proc for _, proc, _ in lanes]
    plan.rngs = [m._jitter_rngs[core] for core, _, _ in lanes]
    plan.floor = [phase.mpki_floor for _, _, phase in lanes]
    plan.delta = [
        phase.mpki_peak - phase.mpki_floor for _, _, phase in lanes
    ]
    plan.wscale = [phase.ways_scale for _, _, phase in lanes]
    plan.sens = [phase.mem_sensitivity for _, _, phase in lanes]
    plan.freq = [gov_freqs[core] for core, _, _ in lanes]
    plan.fh = [freq * 1e9 for freq in plan.freq]
    plan.cpi0 = [phase.base_cpi for _, _, phase in lanes]
    plan.apki = [phase.apki for _, _, phase in lanes]
    plan.prev_w = [-1.0] * n
    plan.mpki_a = [0.0] * n
    plan.coef = [0.0] * n
    plan.eff = m._cache_eff
    cnt_i, cnt_c, cnt_a, cnt_m = m._cnt_arrays
    plan.cnt_i = cnt_i
    plan.cnt_c = cnt_c
    plan.cnt_a = cnt_a
    plan.cnt_m = cnt_m
    plan.ips_prev = m._ips_prev
    plan.clock = m.clock
    plan.dt = config.tick_s
    plan.sigma = sigma
    plan.mu = m._jitter_mu
    cache = m.cache
    snap = cache._tau <= 0
    plan.alpha = None if snap else cache.inertia_alpha(config.tick_s)
    memory = m.memory
    plan.base_ns = memory.base_latency_ns
    plan.scale = memory.contention_scale
    plan.rho_cap = memory.rho_cap
    plan.inv_peak = memory.seconds_per_miss_at_peak
    plan.memo = {}
    plan.max_memo = MAX_MEMO
    plan.two_pi = TWO_PI
    plan.wbuf = [0.0] * num_cores
    plan.tbuf = [0.0] * num_cores
    plan.active_bits = active_bits
    # _rebuild_groups format: List[(way_count, List[core])]; list
    # objects are installed as-is by span_commit and never mutated by
    # the cache, so one prebuilt copy serves every commit of this plan.
    plan.groups_commit = [
        (ways, list(cores_g)) for ways, cores_g in groups_cores
    ]
    plan.disjoint = disjoint

    energy = m._energy
    plan.energy = energy
    if energy is not None:
        plan.energy_accumulate = energy.accumulate
        plan.freqs_list = list(gov_freqs)
        busy = [False] * num_cores
        for core, _, _ in lanes:
            busy[core] = True
        plan.busy_list = busy
    else:
        plan.energy_accumulate = None
        plan.freqs_list = None
        plan.busy_list = None

    guard_procs = []
    guard_lanes = []
    for i, (core, proc, phase) in enumerate(lanes):
        if proc.is_fg:
            # FG pinned to its last phase only leaves it by completing,
            # which the completion path detects exactly.
            if proc._phase_index != len(proc._spec.phases) - 1:
                guard_procs.append((proc, True))
                guard_lanes.append(i)
        else:
            # BG phase windows cover the wrapped offset; a phase that
            # spans the whole program never produces a boundary.
            if proc._phase_start > 0.0 or proc._phase_end < proc._total:
                guard_procs.append((proc, False))
                guard_lanes.append(i)
    plan.guard_procs = guard_procs

    shape = (
        num_cores,
        tuple(core for core, _, _ in lanes),
        tuple(proc.is_fg for _, proc, _ in lanes),
        tuple(apki > 0 for apki in plan.apki),
        jitter,
        snap,
        tuple(
            (ways, tuple(lane_index[c] for c in cores_g))
            for ways, cores_g in groups_cores
        ),
        tuple(guard_lanes),
        energy is not None,
    )
    plan.stolen = m._stolen_s
    ident = tuple(range(n))
    plan.kernel = _compile_kernel(shape + (False, ident), plan, stats)
    # The stolen variant peels the span's first tick to charge pending
    # overhead time; with no overhead pending it is bit-identical to the
    # plain kernel (dt - 0.0 == dt), so routing between the two is purely
    # a performance decision.
    plan.kernel_stolen = _compile_kernel(shape + (True, ident), plan, stats)

    # Clone-lane dedup: jitter-free lanes running the same phase
    # constants at the same frequency in the same cache group compute
    # bit-identical solver values every tick, so compile a kernel pair
    # that solves once per clone class.  ``SpanPlan.run`` revalidates
    # the per-core state equality before selecting these.
    plan.kernel_dedup = None
    plan.kernel_dedup_stolen = None
    plan.clone_checks = ()
    if not jitter and n > 1 and misscurve_table_enabled():
        lane_group = {}
        for gi, (_ways, cores_g) in enumerate(groups_cores):
            for c in cores_g:
                lane_group[lane_index[c]] = gi
        first: Dict[tuple, int] = {}
        cls: List[int] = []
        for i, (core, proc, phase) in enumerate(lanes):
            key = (
                proc.is_fg,
                phase.mpki_floor, phase.mpki_peak, phase.ways_scale,
                phase.mem_sensitivity, phase.base_cpi, phase.apki,
                plan.freq[i], lane_group.get(i),
            )
            cls.append(first.setdefault(key, i))
        classes = tuple(cls)
        if classes != ident:
            plan.kernel_dedup = _compile_kernel(
                shape + (False, classes), plan, stats
            )
            plan.kernel_dedup_stolen = _compile_kernel(
                shape + (True, classes), plan, stats
            )
            plan.clone_checks = [
                (classes[i], i, lanes[classes[i]][0], lanes[i][0])
                for i in range(n) if classes[i] != i
            ]
            stats.table_builds += len(
                {r for r in classes if cls.count(r) > 1}
            )
    return plan


def _compile_kernel(shape: tuple, plan: SpanPlan, stats: SpanStats):
    """Compile (or fetch) the kernel for ``shape``, bound to ``plan``."""
    code = _KERNEL_CODE_CACHE.get(shape)
    if code is None:
        source = _kernel_source(shape)
        code = compile(source, "<spanplan>", "exec")
        _KERNEL_CODE_CACHE[shape] = code
        stats.kernels_compiled += 1
    namespace: Dict[str, object] = {"__builtins__": {}}
    exec(code, namespace)
    return namespace["_factory"](
        plan, math.exp, math.log, math.cos, math.sin, math.sqrt, len,
        MPKI_SCALE,
    )


class SpanPlanner:
    """Caches SpanPlans by a value signature of the machine state.

    The signature captures everything a plan bakes in: per lane
    ``(pid, spec epoch, phase index, frequency)`` plus the cache-mask
    epoch and the energy-model identity.  Dirigent runs cycle through a
    small working set of states (phases x DVFS grades), so plans — and
    their persistent miss-curve/fixed-point memos — are almost always
    reused rather than rebuilt.
    """

    def __init__(self, machine, stats: SpanStats) -> None:
        self._m = machine
        self._stats = stats
        self._plans: Dict[tuple, Optional[SpanPlan]] = {}

    def plan_for_span(self) -> Optional[SpanPlan]:
        """A plan matching the machine's current state, or None.

        None means the shape is unsupported here and the caller should
        run the generic fused kernel (which also re-syncs any stale
        phase cursors — this method syncs them first, exactly as the
        generic gather does).
        """
        m = self._m
        gov_freqs = m._gov_freqs
        sig_parts: List[object] = [
            m.cache.mask_epoch, m._energy is not None,
        ]
        append = sig_parts.append
        for core, proc in enumerate(m._procs_by_core):
            if proc is None or proc.state != STATE_RUNNING:
                continue
            if not proc._phase_start <= proc.progress < proc._phase_end:
                proc._sync_phase_cursor()
            append(
                (proc.pid, proc._spec_epoch, proc._phase_index, gov_freqs[core])
            )
        sig = tuple(sig_parts)
        plans = self._plans
        if sig in plans:
            plan = plans[sig]
            if plan is None or plan.energy is m._energy:
                if plan is not None:
                    self._stats.plan_reuses += 1
                return plan
        plan = _build_plan(m, self._stats)
        if len(plans) >= MAX_PLANS:
            plans.clear()
        plans[sig] = plan
        if plan is not None:
            self._stats.plan_builds += 1
        return plan
