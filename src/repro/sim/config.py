"""Machine configuration and environment knobs for the simulated node.

The defaults mirror the evaluation platform of the Dirigent paper: a 6-core
Intel Xeon E5-2618L v3 with per-core DVFS (Dirigent uses 5 equispaced grades
between 1.2 and 2.0 GHz), a 15 MB 20-way last-level cache with way
partitioning (Intel CAT), and 4 channels of DDR4-2133 memory.

The simulator is a discrete-time performance model; ``tick_s`` sets its
resolution.  The remaining knobs parameterize the contention model: memory
latency inflation under load, cache inertia, and the stochastic noise that
creates run-to-run variation (OS jitter, timer error, input-size jitter).

This module is also the **single funnel for environment variables**: every
``REPRO_*`` knob the package honors is declared in :data:`KNOBS` and read
through a typed accessor defined here.  Accessors re-read the environment
on every call — never at import time — so worker processes and tests that
set a variable after import observe the change.  The static analyzer
(:mod:`repro.analysis`) enforces both properties: rule ``ENV001`` rejects
``os.environ`` reads anywhere else in the package, rule ``ENV002`` rejects
accessor calls that execute at import time, and rule ``ENV003``
cross-checks that every knob declared here as result-relevant is folded
into the experiment cache keys.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Frequency grades used by Dirigent on the evaluation machine (GHz).
DEFAULT_FREQ_GRADES_GHZ: Tuple[float, ...] = (1.2, 1.4, 1.6, 1.8, 2.0)


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated machine.

    Attributes:
        num_cores: Number of physical cores; each core runs at most one
            pinned process, matching the paper's pinned deployment.
        freq_grades_ghz: Available per-core DVFS grades, ascending.
        llc_ways: Associativity of the way-partitioned last-level cache.
        llc_mb: Last-level cache capacity in mebibytes (reporting only).
        mem_peak_gbps: Peak sustainable memory bandwidth in gigabytes/s.
        mem_base_latency_ns: Unloaded LLC-miss penalty in nanoseconds.
        mem_contention_scale: Strength of queueing-induced latency
            inflation; the loaded penalty is
            ``base * (1 + scale * rho / (1 - rho))``.
        mem_rho_cap: Upper bound on modeled bandwidth utilization to keep
            the queueing term finite.
        cache_line_bytes: Line size used to convert misses to bandwidth.
        tick_s: Simulator tick length in seconds.
        cache_inertia_tau_s: Time constant of the exponential approach of
            actual cache occupancy to its post-repartition target ("cache
            inertia" in the paper).
        os_jitter_sigma: Standard deviation of the per-tick lognormal
            progress-rate noise modeling OS interference.
        timer_jitter_prob: Probability that a timer fires one tick late,
            modeling sleep-timer error (the paper's ``dT_i != dT``).
        freq_transition_ticks: Ticks before a frequency change takes
            effect.
        seed: Root seed for all stochastic streams of the machine.
    """

    num_cores: int = 6
    freq_grades_ghz: Tuple[float, ...] = DEFAULT_FREQ_GRADES_GHZ
    llc_ways: int = 20
    llc_mb: float = 15.0
    # Effective bandwidth available to LLC-miss traffic under the model's
    # abstraction (not the DDR4 pin bandwidth): calibrated so that five
    # streaming batch tasks drive the utilization regime in which the
    # paper's testbed exhibits its contention behaviour.
    mem_peak_gbps: float = 4.0
    mem_base_latency_ns: float = 80.0
    mem_contention_scale: float = 2.5
    mem_rho_cap: float = 0.95
    cache_line_bytes: int = 64
    tick_s: float = 1e-3
    cache_inertia_tau_s: float = 0.15
    os_jitter_sigma: float = 0.015
    timer_jitter_prob: float = 0.2
    freq_transition_ticks: int = 1
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("num_cores must be >= 1")
        if not self.freq_grades_ghz:
            raise ConfigurationError("freq_grades_ghz must be non-empty")
        if any(f <= 0 for f in self.freq_grades_ghz):
            raise ConfigurationError("frequency grades must be positive")
        if list(self.freq_grades_ghz) != sorted(self.freq_grades_ghz):
            raise ConfigurationError("frequency grades must be ascending")
        if len(set(self.freq_grades_ghz)) != len(self.freq_grades_ghz):
            raise ConfigurationError("frequency grades must be distinct")
        if self.llc_ways < 2:
            raise ConfigurationError("llc_ways must be >= 2 to partition")
        if self.mem_peak_gbps <= 0:
            raise ConfigurationError("mem_peak_gbps must be positive")
        if self.mem_base_latency_ns <= 0:
            raise ConfigurationError("mem_base_latency_ns must be positive")
        if not 0.0 < self.mem_rho_cap < 1.0:
            raise ConfigurationError("mem_rho_cap must be in (0, 1)")
        if self.tick_s <= 0:
            raise ConfigurationError("tick_s must be positive")
        if self.cache_inertia_tau_s < 0:
            raise ConfigurationError("cache_inertia_tau_s must be >= 0")
        if self.os_jitter_sigma < 0:
            raise ConfigurationError("os_jitter_sigma must be >= 0")
        if not 0.0 <= self.timer_jitter_prob <= 1.0:
            raise ConfigurationError("timer_jitter_prob must be in [0, 1]")

    @property
    def min_freq_ghz(self) -> float:
        """Lowest available frequency grade."""
        return self.freq_grades_ghz[0]

    @property
    def max_freq_ghz(self) -> float:
        """Highest available frequency grade."""
        return self.freq_grades_ghz[-1]

    @property
    def num_grades(self) -> int:
        """Number of DVFS grades."""
        return len(self.freq_grades_ghz)

    def with_seed(self, seed: int) -> "MachineConfig":
        """Return a copy of this configuration with a different seed."""
        return replace(self, seed=seed)

    def grade_of(self, freq_ghz: float) -> int:
        """Return the grade index of ``freq_ghz``.

        Raises:
            ConfigurationError: if the frequency is not an exact grade.
        """
        try:
            return self.freq_grades_ghz.index(freq_ghz)
        except ValueError:
            raise ConfigurationError(
                "frequency %.3f GHz is not one of the available grades %s"
                % (freq_ghz, list(self.freq_grades_ghz))
            ) from None


#: Configuration mirroring the paper's Xeon E5-2618L v3 testbed.
PAPER_MACHINE = MachineConfig()


# ---------------------------------------------------------------------------
# Environment knobs
# ---------------------------------------------------------------------------

#: FG executions measured per task when the caller does not choose.
ENV_EXECUTIONS = "REPRO_EXECUTIONS"

#: Worker-process count for the parallel sweep engine.
ENV_WORKERS = "REPRO_WORKERS"

#: Cap on cells per lane pack in the parallel sweep engine.
ENV_PACK_CELLS = "REPRO_PACK_CELLS"

#: Simulation backend selector (``scalar``, ``batch``, or ``vector``).
ENV_BACKEND = "REPRO_SIM_BACKEND"

#: Cap on machines fused per vector-kernel call (multi-cell backend).
ENV_VECTOR_CELLS = "REPRO_VECTOR_CELLS"

#: Multi-cell numpy kill switch (``0``/``off``/``false`` disables).
ENV_VECTOR_NUMPY = "REPRO_VECTOR_NUMPY"

#: Span-compilation kill switch (``0``/``off``/``false`` disables).
ENV_SPAN_COMPILE = "REPRO_SPAN_COMPILE"

#: Exact-solver tabulation kill switch (``0``/``off``/``false`` disables
#: the miss-curve/penalty tables and the clone-lane dedup kernels).
ENV_MISSCURVE_TABLE = "REPRO_MISSCURVE_TABLE"

#: Root directory of the persistent result cache.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Persistent-cache master switch (``0`` disables reads and writes).
ENV_CACHE = "REPRO_CACHE"

#: Per-cell wall-clock timeout for parallel sweep workers (seconds).
ENV_CELL_TIMEOUT_S = "REPRO_CELL_TIMEOUT_S"

#: Graceful-degradation kill switch (``0`` disables all hardening).
ENV_DEGRADED_MODE = "REPRO_DEGRADED_MODE"

#: Worker-pool reuse kill switch (``0``/``off``/``false`` disables).
ENV_POOL_REUSE = "REPRO_POOL_REUSE"

#: Persistent kernel-source cache kill switch (``0``/``off``/``false``).
ENV_KERNEL_DISK_CACHE = "REPRO_KERNEL_DISK_CACHE"

#: Work-stealing sweep dispatch kill switch (``0``/``off``/``false``).
ENV_STEAL = "REPRO_STEAL"

#: Fleet failover kill switch (``0`` disables stream re-placement).
ENV_FLEET_FAILOVER = "REPRO_FLEET_FAILOVER"

#: Heartbeat gap (seconds) before the fleet monitor suspects a node.
ENV_FLEET_SUSPECT_S = "REPRO_FLEET_SUSPECT_S"

#: Heartbeat gap (seconds) before the fleet monitor declares a node dead.
ENV_FLEET_DEAD_S = "REPRO_FLEET_DEAD_S"

#: Default suspect/dead heartbeat-gap thresholds of the fleet control
#: plane, in fleet-virtual seconds (about 5 and 12 drive blocks at the
#: paper's 1 ms tick).
DEFAULT_FLEET_SUSPECT_S = 0.15
DEFAULT_FLEET_DEAD_S = 0.4

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Default FG executions per task (the paper uses 100).
DEFAULT_EXECUTIONS_FALLBACK = 40


@dataclass(frozen=True)
class EnvKnob:
    """Declaration of one environment variable the package honors.

    Attributes:
        name: The environment variable.
        accessor: Name of the typed accessor function in this module.
        kind: Value shape (``int``/``flag``/``str``/``path``), for docs.
        default: Human-readable default, for docs and ``--help`` text.
        cache_key_symbol: When the knob can change *simulation results*,
            the identifier that must appear inside the experiment
            harness's disk-cache key tuples so cached cells can never be
            served across differing knob values.  ``None`` marks knobs
            that affect scheduling, performance, or the cache machinery
            itself but are result-neutral by construction (pinned by the
            equivalence test suites).
        doc: One-line summary surfaced by ``repro lint --list-rules``
            tooling and the docs.
    """

    name: str
    accessor: str
    kind: str
    default: str
    cache_key_symbol: Optional[str]
    doc: str


#: Registry of every supported environment knob.  ``repro.analysis``
#: treats this tuple as ground truth: a new ``os.environ`` read anywhere
#: else in the package fails lint until the knob is declared here.
KNOBS: Tuple[EnvKnob, ...] = (
    EnvKnob(
        ENV_EXECUTIONS, "default_executions", "int",
        str(DEFAULT_EXECUTIONS_FALLBACK), "executions",
        "Default FG executions measured per task.",
    ),
    EnvKnob(
        ENV_WORKERS, "env_workers", "int", "cpu count", None,
        "Worker processes for parallel sweeps (scheduling only).",
    ),
    EnvKnob(
        ENV_PACK_CELLS, "env_pack_cells", "int", "grid/workers", None,
        "Cells per lane pack in parallel sweeps (scheduling only).",
    ),
    EnvKnob(
        ENV_BACKEND, "env_backend", "str", "batch", "resolve_backend",
        "Simulation backend (scalar reference or batch engine).",
    ),
    EnvKnob(
        ENV_SPAN_COMPILE, "span_compile_enabled", "flag", "1", None,
        "Span-compiled kernel kill switch (bit-identical either way).",
    ),
    EnvKnob(
        # Result-neutral: the tables serve exact-key lookups of pure
        # float computations and the clone-dedup kernels only fold
        # lanes whose inputs compare bit-equal, so every tabulated
        # value is bit-identical to the direct computation — pinned by
        # tests/sim/test_solver_tables.py and the scalar/batch/vector
        # equivalence suites with the knob both on and off.
        ENV_MISSCURVE_TABLE, "misscurve_table_enabled", "flag", "1", None,
        "Exact solver tabulation kill switch (bit-identical either way).",
    ),
    EnvKnob(
        # Scheduling-only: the cap changes how many machines share one
        # fused kernel call, never what any machine computes — fused and
        # per-machine advancement are bit-identical, pinned by
        # tests/sim/test_vector_equivalence.py.
        ENV_VECTOR_CELLS, "env_vector_cells", "int", "unlimited", None,
        "Machines fused per vector kernel call (scheduling only).",
    ),
    EnvKnob(
        # Result-neutral: without numpy the vector backend advances each
        # cell through its own batch engine, which the equivalence suite
        # pins bit-identical to the fused path.
        ENV_VECTOR_NUMPY, "vector_numpy_enabled", "flag", "1", None,
        "Multi-cell numpy kill switch (bit-identical either way).",
    ),
    EnvKnob(
        ENV_CACHE_DIR, "cache_dir", "path", DEFAULT_CACHE_DIR, None,
        "Root directory of the persistent result cache.",
    ),
    EnvKnob(
        ENV_CACHE, "cache_enabled", "flag", "1", None,
        "Persistent result cache master switch.",
    ),
    EnvKnob(
        # Scheduling-only: a timed-out cell is recomputed serially with
        # identical inputs, so the knob can never change a cell's value.
        ENV_CELL_TIMEOUT_S, "env_cell_timeout_s", "float", "none", None,
        "Per-cell timeout for parallel sweep workers (scheduling only).",
    ),
    EnvKnob(
        # Result-relevant only for *fault-injected* runs, which bypass
        # the disk cache entirely (run_policy_cached never takes a
        # FaultPlan); clean runs are bit-identical either way, pinned by
        # the zero-fault equivalence tests.
        ENV_DEGRADED_MODE, "degraded_mode_enabled", "flag", "1", None,
        "Graceful-degradation hardening kill switch (chaos baseline).",
    ),
    EnvKnob(
        # Scheduling-only: a reused pool re-runs the same module-level
        # worker functions on the same pickled arguments as a fresh
        # pool; every per-process cache the warm worker carries is an
        # exact-key memo of a pure computation.  Bit-identity of warm
        # vs. cold vs. serial sweeps is pinned by
        # tests/experiments/test_warm_pool.py.
        ENV_POOL_REUSE, "pool_reuse_enabled", "flag", "1", None,
        "Worker-pool reuse across sweeps (bit-identical either way).",
    ),
    EnvKnob(
        # Result-neutral: the disk cache stores generated kernel
        # *sources* keyed by shape + code-version tag and every load is
        # digest-verified, so a loaded source is byte-equal to what
        # _generate_source would emit (audited by lint rule GEN003 and
        # the torn-write tests).
        ENV_KERNEL_DISK_CACHE, "kernel_disk_cache_enabled", "flag", "1",
        None,
        "Persistent kernel-source cache (bit-identical either way).",
    ),
    EnvKnob(
        # Scheduling-only: stealing changes which worker runs a pack and
        # when, never the pack's cells or their lane-packing; splits cut
        # packs at seed-group boundaries the serial path also honors.
        # Pinned by tests/experiments/test_warm_pool.py.
        ENV_STEAL, "steal_enabled", "flag", "1", None,
        "Work-stealing sweep dispatch (bit-identical either way).",
    ),
    EnvKnob(
        # Result-relevant only for *node-faulted* fleet runs, which are
        # never disk-cached (ClusterResult never enters the result
        # cache, mirroring the single-node chaos path); zero-fault fleet
        # runs install no control plane at all, so the knob cannot reach
        # them — pinned by the zero-node-fault bit-identity tests.
        ENV_FLEET_FAILOVER, "fleet_failover_enabled", "flag", "1", None,
        "Fleet failover kill switch (no-failover chaos baseline).",
    ),
    EnvKnob(
        # Same cache story as REPRO_FLEET_FAILOVER: only the uncached
        # fleet chaos path reads the threshold.
        ENV_FLEET_SUSPECT_S, "env_fleet_suspect_s", "float",
        str(DEFAULT_FLEET_SUSPECT_S), None,
        "Heartbeat gap before the fleet monitor suspects a node.",
    ),
    EnvKnob(
        # Same cache story as REPRO_FLEET_FAILOVER: only the uncached
        # fleet chaos path reads the threshold.
        ENV_FLEET_DEAD_S, "env_fleet_dead_s", "float",
        str(DEFAULT_FLEET_DEAD_S), None,
        "Heartbeat gap before the fleet monitor declares a node dead.",
    ),
)


def default_executions() -> int:
    """FG executions per task when the caller does not choose.

    Reads ``REPRO_EXECUTIONS`` on every call (never at import), so late
    environment changes — a test's ``monkeypatch.setenv``, a sweep
    worker inheriting an exported value — take effect immediately.

    Raises:
        ConfigurationError: if the variable is set but not an integer.
    """
    raw = os.environ.get(ENV_EXECUTIONS)
    if raw is None or not raw.strip():
        return DEFAULT_EXECUTIONS_FALLBACK
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            "%s must be an integer, got %r" % (ENV_EXECUTIONS, raw)
        ) from None
    if value < 1:
        raise ConfigurationError(
            "%s must be >= 1, got %d" % (ENV_EXECUTIONS, value)
        )
    return value


def env_workers() -> Optional[int]:
    """``REPRO_WORKERS`` as a positive int, or None when unset/invalid.

    Invalid values degrade to None (the CPU count) rather than failing a
    sweep over a harmless typo; the knob only affects scheduling.
    """
    raw = os.environ.get(ENV_WORKERS)
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def env_pack_cells() -> Optional[int]:
    """``REPRO_PACK_CELLS`` as a positive int, or None when unset/invalid."""
    raw = os.environ.get(ENV_PACK_CELLS)
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def env_backend() -> Optional[str]:
    """``REPRO_SIM_BACKEND`` verbatim, or None when unset.

    Validation (and the default) lives in
    :func:`repro.sim.batch.resolve_backend`, the single resolver every
    cache key folds in.
    """
    return os.environ.get(ENV_BACKEND) or None


def env_vector_cells() -> Optional[int]:
    """``REPRO_VECTOR_CELLS`` as a positive int, or None when unset.

    None means "no cap" (every lockstep group fuses whole).  Invalid
    values degrade to None rather than failing a run over a typo; the
    knob only affects scheduling — fused and per-machine advancement
    are bit-identical.
    """
    raw = os.environ.get(ENV_VECTOR_CELLS)
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def vector_numpy_enabled() -> bool:
    """True unless ``REPRO_VECTOR_NUMPY`` disables the fused numpy path.

    Recognized off-values are ``0``, ``off``, and ``false``
    (case-insensitive); anything else — including unset — enables the
    fused structure-of-arrays kernels when numpy is importable.  With
    the switch off (or numpy missing) the vector backend advances each
    cell through its own batch engine, which is bit-identical, so this
    knob is result-neutral.
    """
    flag = os.environ.get(ENV_VECTOR_NUMPY, "").strip().lower()
    return flag not in ("0", "off", "false")


def span_compile_enabled() -> bool:
    """True unless ``REPRO_SPAN_COMPILE`` disables the compiled path.

    Recognized off-values are ``0``, ``off``, and ``false``
    (case-insensitive); anything else — including unset — enables span
    compilation.  The compiled path is bit-identical to the generic
    kernel, so this knob is result-neutral.
    """
    flag = os.environ.get(ENV_SPAN_COMPILE, "").strip().lower()
    return flag not in ("0", "off", "false")


def misscurve_table_enabled() -> bool:
    """True unless ``REPRO_MISSCURVE_TABLE`` disables solver tabulation.

    Recognized off-values are ``0``, ``off``, and ``false``
    (case-insensitive); anything else — including unset — enables the
    exact miss-curve/penalty tables in :mod:`repro.sim.perf` and the
    clone-lane dedup kernels in :mod:`repro.sim.spanplan`.  Both serve
    only exact-key lookups of pure float computations, so results are
    bit-identical either way and the knob is result-neutral.
    """
    flag = os.environ.get(ENV_MISSCURVE_TABLE, "").strip().lower()
    return flag not in ("0", "off", "false")


def cache_dir() -> str:
    """Root of the persistent result cache (``REPRO_CACHE_DIR``)."""
    return os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR


def cache_enabled() -> bool:
    """False when ``REPRO_CACHE=0`` disables the persistent cache."""
    return os.environ.get(ENV_CACHE, "1") != "0"


def env_cell_timeout_s() -> Optional[float]:
    """``REPRO_CELL_TIMEOUT_S`` as a positive float, or None when unset.

    None means "wait forever" (today's behavior).  Invalid or
    non-positive values degrade to None rather than failing a sweep over
    a typo; the knob only affects scheduling — a timed-out cell is
    recomputed serially with identical inputs.
    """
    raw = os.environ.get(ENV_CELL_TIMEOUT_S)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def degraded_mode_enabled() -> bool:
    """False when ``REPRO_DEGRADED_MODE=0`` disables all hardening.

    With hardening off the runtime never rejects outlier samples,
    never retries failed actuations, and never enters the degraded or
    safe modes — the unhardened baseline the chaos regression tests
    compare against.  Clean (fault-free) runs are bit-identical under
    both settings because every hardening path is trigger-gated on
    fault symptoms that clean runs never produce.
    """
    return os.environ.get(ENV_DEGRADED_MODE, "1") != "0"


def pool_reuse_enabled() -> bool:
    """True unless ``REPRO_POOL_REUSE`` disables worker-pool reuse.

    Recognized off-values are ``0``, ``off``, and ``false``
    (case-insensitive); anything else — including unset — keeps the
    sweep engine's ``ProcessPoolExecutor`` alive across consecutive
    ``run_grid`` calls.  A reused pool runs the same module-level worker
    functions on the same pickled arguments as a fresh one, so this
    knob is result-neutral (pinned by the warm-pool determinism suite).
    """
    flag = os.environ.get(ENV_POOL_REUSE, "").strip().lower()
    return flag not in ("0", "off", "false")


def kernel_disk_cache_enabled() -> bool:
    """True unless ``REPRO_KERNEL_DISK_CACHE`` disables the kernel cache.

    Recognized off-values are ``0``, ``off``, and ``false``
    (case-insensitive); anything else — including unset — lets
    :mod:`repro.sim.spanplan` persist generated kernel sources under
    ``<cache_dir>/kernels/`` and load them instead of regenerating.
    Loads are digest-verified against the stored source, and entries are
    keyed by the code-version tag, so the knob is result-neutral.
    """
    flag = os.environ.get(ENV_KERNEL_DISK_CACHE, "").strip().lower()
    return flag not in ("0", "off", "false")


def steal_enabled() -> bool:
    """True unless ``REPRO_STEAL`` disables work-stealing dispatch.

    Recognized off-values are ``0``, ``off``, and ``false``
    (case-insensitive); anything else — including unset — replaces the
    static submit-everything-up-front sweep dispatch with the adaptive
    seed/steal/split scheme.  Stealing only changes which worker runs a
    pack and when, never a pack's cells or lane packing, so this knob
    is result-neutral (pinned by the warm-pool determinism suite).
    """
    flag = os.environ.get(ENV_STEAL, "").strip().lower()
    return flag not in ("0", "off", "false")


def fleet_failover_enabled() -> bool:
    """False when ``REPRO_FLEET_FAILOVER=0`` disables stream re-placement.

    With failover off the fleet control plane still monitors heartbeats
    and accounts detection times, but never re-places streams off dead
    nodes — the no-failover baseline the fleet chaos regression tests
    compare against.  Zero-node-fault runs install no control plane at
    all, so the knob cannot affect them.
    """
    return os.environ.get(ENV_FLEET_FAILOVER, "1") != "0"


def _env_positive_float(name: str, default: float) -> float:
    """A required-positive float knob with a constant default."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            "%s must be a number, got %r" % (name, raw)
        )
    if value <= 0:
        raise ConfigurationError(
            "%s must be > 0, got %r" % (name, raw)
        )
    return value


def env_fleet_suspect_s() -> float:
    """``REPRO_FLEET_SUSPECT_S``: gap before a node turns suspect.

    Raises:
        ConfigurationError: if the variable is set but not a positive
            number.
    """
    return _env_positive_float(ENV_FLEET_SUSPECT_S, DEFAULT_FLEET_SUSPECT_S)


def env_fleet_dead_s() -> float:
    """``REPRO_FLEET_DEAD_S``: gap before a node is declared dead.

    Raises:
        ConfigurationError: if the variable is set but not a positive
            number.
    """
    return _env_positive_float(ENV_FLEET_DEAD_S, DEFAULT_FLEET_DEAD_S)


def knob_fingerprint() -> Tuple[Tuple[str, Optional[str]], ...]:
    """Raw environment values of every declared knob, in registry order.

    The parallel sweep engine folds this snapshot into its worker-pool
    generation key: forked workers capture the parent's environment at
    spawn time, so any knob flip must retire the live pool rather than
    let stale workers serve the next sweep.  Reading through
    ``os.environ`` here (rather than the typed accessors) keeps the
    fingerprint sensitive to *any* textual change, including
    invalid-but-set values the accessors would normalize away.
    """
    return tuple((knob.name, os.environ.get(knob.name)) for knob in KNOBS)
