"""Run-to-next-event batch execution engine for the simulated machine.

The scalar kernel (:meth:`repro.sim.machine.Machine.tick`) pays full
Python dispatch — gather, fixed point, counter writes, timer and
governor checks — for every tick, even across long stretches where
nothing discrete happens.  This module amortizes that overhead the way
batching amortizes per-step cost in inference engines: it computes an
**event horizon** — the earliest tick at which the machine's trajectory
can deviate from straight-line execution — and advances all ticks up to
that horizon in one fused kernel.

The horizon is the minimum of:

(a) the timer wheel's next deadline (:meth:`TimerWheel.next_deadline`),
    since firing callbacks can pause/resume processes, change DVFS
    grades, repartition the cache, or charge runtime overhead;
(b) the governor's next pending DVFS transition
    (:meth:`FrequencyGovernor.next_transition_tick`), since an applied
    grade changes every subsequent tick's frequency inputs;
(c) each running process's estimated ticks to its next phase boundary
    (``(phase_end - progress) / (ips * tick_s)``), since crossing one
    swaps the per-phase model inputs; and
(d) each FG task's estimated ticks to completion, since completions
    dispatch listeners (prediction bookkeeping, BG rotation) that may
    mutate arbitrary machine state.

Estimates (c) and (d) use the previous tick's progress rates, which
drift as cache occupancy and bandwidth contention evolve, so they bound
the span *heuristically*; correctness never depends on them.  Inside
the fused kernel every tick re-checks, before mutating anything, that
each process is still inside its gathered phase window, and handles FG
completions with exactly the scalar kernel's logic, exiting the span
whenever an event actually occurs.

**Bit-identical semantics.**  The fused kernel performs the same
floating-point operations in the same order as ``Machine.tick``: the
per-tick miss-curve evaluation, OS-jitter draw (same RNG streams, same
draw order), three-iteration rho fixed point, counter accumulation,
and ``SharedCache.tick_update`` are all preserved.  What the span
structure removes is pure interpreter overhead: per-tick timer/governor
checks, the per-core gather of phase attributes, and — once a span
becomes *stationary* (no jitter, cache occupancy and rho exactly
converged) — the fixed point and cache update themselves, whose outputs
are provably equal to the previous tick's.  Equivalence is enforced by
``tests/sim/test_batch_equivalence.py``.

Backend selection is environment-driven: ``REPRO_SIM_BACKEND=scalar``
pins the reference per-tick loop, ``batch`` (the default) enables this
engine.  :class:`repro.sim.machine.Machine` also accepts an explicit
``backend=`` argument.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.config import ENV_BACKEND, env_backend
from repro.sim.perf import FIXED_POINT_ITERATIONS, MPKI_SCALE
from repro.sim.process import STATE_RUNNING, ExecutionRecord, Process
from repro.sim.spanplan import SpanPlanner, SpanStats, span_compile_enabled

#: Reference per-tick loop (bit-exact baseline pinned by
#: ``tests/sim/test_machine_perf_equivalence.py``).
BACKEND_SCALAR = "scalar"

#: Run-to-next-event batch engine (this module).
BACKEND_BATCH = "batch"

#: Multi-cell structure-of-arrays backend (:mod:`repro.sim.vector`).
#: A single machine under this backend advances through its batch
#: engine (bit-identical); the fused cell-axis kernels engage when a
#: :class:`repro.sim.vector.MultiCell` drives many machines at once.
BACKEND_VECTOR = "vector"

#: All recognized backends.
BACKENDS = (BACKEND_SCALAR, BACKEND_BATCH, BACKEND_VECTOR)

# ENV_BACKEND (re-exported from repro.sim.config) selects the backend.

#: Backend used when neither the environment nor the caller chooses.
DEFAULT_BACKEND = BACKEND_BATCH


def resolve_backend(override: Optional[str] = None) -> str:
    """Resolve the active simulation backend name.

    Precedence: the explicit ``override`` argument, then the
    ``REPRO_SIM_BACKEND`` environment variable, then
    :data:`DEFAULT_BACKEND`.

    Raises:
        ConfigurationError: if the requested backend is unknown.
    """
    name = override or env_backend() or DEFAULT_BACKEND
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ConfigurationError(
            "unknown simulation backend %r (expected one of %s)"
            % (name, ", ".join(BACKENDS))
        )
    return name


class BatchEngine:
    """Advances a :class:`~repro.sim.machine.Machine` span-by-span.

    The engine is a friend of the machine: it reads the same hoisted
    hot-path state (``_cnt_arrays``, ``_cache_eff``, ``_gov_freqs``,
    ...) the scalar kernel uses, plus the public event peeks added for
    it (``timers.next_deadline()``, ``governor.next_transition_tick()``,
    ``clock.tick``).  All per-span buffers are allocated once here and
    reused, so steady-state spans allocate nothing.
    """

    def __init__(self, machine) -> None:
        self._m = machine
        #: Fast-path observability counters (see SpanStats).
        self.stats = SpanStats()
        self._planner = (
            SpanPlanner(machine, self.stats)
            if span_compile_enabled() else None
        )
        num_cores = machine.config.num_cores
        self._cores = [0] * num_cores
        self._procs: List[Optional[Process]] = [None] * num_cores
        self._floor = [0.0] * num_cores
        self._delta = [0.0] * num_cores
        self._wscale = [1.0] * num_cores
        self._sens = [0.0] * num_cores
        self._freq = [0.0] * num_cores
        self._fh = [0.0] * num_cores
        self._cpi0 = [0.0] * num_cores
        self._apki = [0.0] * num_cores
        self._isfg = [False] * num_cores
        self._jfns: List[object] = [None] * num_cores
        self._prev_w = [-1.0] * num_cores
        self._mpki = [0.0] * num_cores
        self._coef = [0.0] * num_cores
        self._jit = [1.0] * num_cores
        self._ips = [0.0] * num_cores
        self._instr_inc = [0.0] * num_cores
        self._cyc_inc = [0.0] * num_cores
        self._acc_inc = [0.0] * num_cores
        self._miss_inc = [0.0] * num_cores
        self._weights = [0.0] * num_cores

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_ticks(self, ticks: int) -> None:
        """Advance the machine by exactly ``ticks`` ticks."""
        m = self._m
        remaining = ticks
        while remaining > 0:
            horizon = self._horizon(remaining)
            if horizon < 1:
                # An event is due at the current tick (timer or DVFS
                # apply): run the start-of-tick preamble by itself, then
                # re-plan.  The tick itself stays on the span path.
                m.dispatch_events()
                horizon = self._horizon(remaining)
            if horizon >= 1:
                executed = self._dispatch_span(horizon)
                if executed:
                    remaining -= executed
                    continue
            # No span progress (an in-span guard tripped immediately, or
            # a timer callback scheduled work for this same tick): the
            # scalar kernel handles it — it is the semantic reference.
            m.tick()
            remaining -= 1

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------

    def _horizon(self, budget: int) -> int:
        """Ticks that can run before the next discrete event (estimate).

        Components (a) and (b) — timer deadlines and DVFS transitions —
        are exact; (c) and (d) — phase boundaries and FG completions —
        extrapolate the previous tick's progress rates and are verified
        tick-by-tick inside the span.
        """
        m = self._m
        now = m.clock.tick
        horizon = budget
        deadline = m.timers.next_deadline()
        if deadline is not None and deadline - now < horizon:
            horizon = deadline - now
        transition = m.governor.next_transition_tick()
        if transition is not None and transition - now < horizon:
            horizon = transition - now
        if horizon <= 1:
            return horizon
        dt = m.config.tick_s
        ips_prev = m._ips_prev
        for proc in m._procs_by_core:
            if proc is None or proc.state != STATE_RUNNING:
                continue
            step = ips_prev[proc.core] * dt
            if step <= 0.0:
                continue  # no rate estimate yet; the span guard covers it
            progress = proc.progress
            if proc.is_fg:
                if proc._phase_index != len(proc._spec.phases) - 1:
                    ticks_to_boundary = int(
                        (proc._phase_end - progress) / step
                    ) + 1
                    if ticks_to_boundary < horizon:
                        horizon = ticks_to_boundary
                to_target = proc._target_total - progress
                if to_target > 0:
                    ticks_to_completion = int(to_target / step) + 1
                    if ticks_to_completion < horizon:
                        horizon = ticks_to_completion
            else:
                # BG phase windows cover the *wrapped* offset; a phase
                # spanning the whole program never produces an event.
                total = proc._total
                if proc._phase_start > 0.0 or proc._phase_end < total:
                    offset = progress % total if progress >= total else progress
                    ticks_to_boundary = int(
                        (proc._phase_end - offset) / step
                    ) + 1
                    if ticks_to_boundary < horizon:
                        horizon = ticks_to_boundary
        return horizon

    # ------------------------------------------------------------------
    # Fused multi-tick kernel
    # ------------------------------------------------------------------

    def _dispatch_span(self, span: int) -> int:
        """Route a span to the compiled fast path or the generic kernel.

        Compiled kernels (see :mod:`repro.sim.spanplan`) cover the
        common shapes; spans carrying stolen time, overlapping cache
        groups, an idle machine, or a substituted jitter RNG fall back
        to :meth:`_run_span`, whose semantics they replicate exactly.
        """
        stats = self.stats
        stats.spans += 1
        planner = self._planner
        if planner is not None:
            plan = planner.plan_for_span()
            if plan is not None:
                stats.compiled_spans += 1
                # Overhead is only charged during callbacks, which never
                # run mid-span, so exactly the span's first tick carries
                # stolen time: the stolen kernel variants peel that tick
                # and charge it scalar-style.
                return plan.run(span, any(self._m._stolen_s))
        stats.generic_spans += 1
        return self._run_span(span)

    def _run_span(self, span: int) -> int:
        """Run up to ``span`` event-free ticks; returns ticks executed.

        May return early (including 0) when a phase boundary arrives
        sooner than estimated or an FG execution completes; the caller
        falls back to the scalar kernel for the event tick.
        """
        m = self._m
        if not m._settled:
            m.settle_cache()
        clock = m.clock
        config = m.config
        num_cores = config.num_cores
        dt = config.tick_s
        sigma = m._sigma
        mu = m._jitter_mu
        exp_ = math.exp
        eff = m._cache_eff
        gov_freqs = m._gov_freqs
        cnt_i, cnt_c, cnt_a, cnt_m = m._cnt_arrays
        stolen_a = m._stolen_s
        ips_prev = m._ips_prev
        cache_tick = m._cache_tick
        listeners = m._completion_listeners
        energy = m._energy
        memory = m.memory
        base_ns = memory.base_latency_ns
        scale = memory.contention_scale
        rho_cap = memory.rho_cap
        inv_peak = memory.seconds_per_miss_at_peak

        # ---- Gather per-core model inputs once for the whole span ----
        # (the scalar kernel re-reads these every tick; within a span
        # the running set, phases, and frequencies cannot change).
        cores = self._cores
        procs = self._procs
        floor_a = self._floor
        delta_a = self._delta
        wscale = self._wscale
        sens = self._sens
        freq_a = self._freq
        fh = self._fh
        cpi0 = self._cpi0
        apki_a = self._apki
        isfg = self._isfg
        jfns = self._jfns
        prev_w = self._prev_w
        mpki_a = self._mpki
        coef = self._coef
        jit = self._jit
        ips_a = self._ips
        weights = self._weights
        gauss_fns = m._gauss_fns

        guards: List[Tuple[Process, float]] = []
        n = 0
        for core, proc in enumerate(m._procs_by_core):
            if proc is None or proc.state != STATE_RUNNING:
                continue
            if not proc._phase_start <= proc.progress < proc._phase_end:
                proc._sync_phase_cursor()
            phase = proc._spec.phases[proc._phase_index]
            floor = phase.mpki_floor
            cores[n] = core
            procs[n] = proc
            floor_a[n] = floor
            delta_a[n] = phase.mpki_peak - floor
            wscale[n] = phase.ways_scale
            sens[n] = phase.mem_sensitivity
            freq = gov_freqs[core]
            freq_a[n] = freq
            fh[n] = freq * 1e9
            cpi0[n] = phase.base_cpi
            apki_a[n] = phase.apki
            is_fg = proc.is_fg
            isfg[n] = is_fg
            jfns[n] = gauss_fns[core]
            prev_w[n] = -1.0  # force a miss-curve evaluation on tick 1
            if sigma <= 0.0:
                jit[n] = 1.0
            if is_fg:
                # FG pinned to its *last* phase only leaves it by
                # completing, which the completion path detects exactly.
                if proc._phase_index != len(proc._spec.phases) - 1:
                    guards.append((proc, proc._phase_end))
            else:
                # BG phase windows cover the wrapped offset; translate
                # the exit point into raw-progress terms.  A phase that
                # spans the whole program never produces a boundary.
                progress = proc.progress
                total = proc._total
                if proc._phase_start > 0.0 or proc._phase_end < total:
                    offset = progress % total if progress >= total else progress
                    guards.append((proc, progress - offset + proc._phase_end))
            n += 1
        for core in range(num_cores):
            weights[core] = 0.0

        freqs_list: Optional[List[float]] = None
        busy_list: Optional[List[bool]] = None
        if energy is not None:
            # EnergyModel.accumulate reads (never retains) its inputs;
            # the per-span constants are shared across ticks.
            freqs_list = list(gov_freqs)
            busy_list = [False] * num_cores
            for i in range(n):
                busy_list[cores[i]] = True

        instr_inc = self._instr_inc
        cyc_inc = self._cyc_inc
        acc_inc = self._acc_inc
        miss_inc = self._miss_inc

        rho = m._rho
        now_tick = clock.tick
        executed = 0
        stationary = False
        jitter_free = sigma <= 0.0 or n == 0
        # Overhead can only be charged during timer/completion callbacks,
        # which never run mid-span, so only the span's first tick can
        # carry stolen time.
        has_stolen = any(stolen_a)
        completions: List[Tuple[Process, ExecutionRecord]] = []

        while executed < span:
            # Event guard: exit (before mutating anything, including the
            # RNG streams) as soon as a process leaves its gathered
            # phase window — the scalar kernel then re-syncs it.
            for g_proc, g_end in guards:
                if g_proc.progress >= g_end:
                    m._rho = rho
                    memory.observe(rho)
                    return executed

            if stationary:
                # Cache occupancy, rho, and (jitter-free) rates are all
                # exactly converged: this tick's model outputs equal the
                # previous tick's, so only the accumulation side runs.
                for i in range(n):
                    core = cores[i]
                    instructions = instr_inc[i]
                    misses = miss_inc[i]
                    cnt_i[core] += instructions
                    cnt_c[core] += cyc_inc[i]
                    cnt_a[core] += acc_inc[i]
                    cnt_m[core] += misses
                    proc = procs[i]
                    if isfg[i]:
                        remaining = proc._target_total - proc.progress
                        if instructions >= remaining > 0:
                            ips = ips_a[i]
                            dt_to_finish = remaining / ips
                            end_s = now_tick * dt + dt_to_finish
                            miss_share = misses * (remaining / instructions)
                            proc.advance(remaining, miss_share)
                            record = proc.complete_execution(end_s)
                            completions.append((proc, record))
                            leftover = instructions - remaining
                            proc.advance(leftover, misses - miss_share)
                            continue
                    proc.progress += instructions
                    proc.execution_misses += misses
                if energy is not None:
                    energy.accumulate(dt, freqs_list, busy_list)
                now_tick += 1
                clock.tick = now_tick
                executed += 1
                if completions:
                    break
                continue

            # ---- Full model tick (scalar float semantics) ----
            w_changed = False
            for i in range(n):
                w = eff[cores[i]]
                if w < 0.0:
                    w = 0.0
                if w != prev_w[i]:
                    w_changed = True
                    prev_w[i] = w
                    mpki = floor_a[i] + delta_a[i] * exp_(-w / wscale[i])
                    mpki_a[i] = mpki
                    coef[i] = mpki * MPKI_SCALE
                if sigma > 0.0:
                    jit[i] = exp_(jfns[i](mu, sigma))

            rho_in = rho
            for _ in range(FIXED_POINT_ITERATIONS):
                penalty_ns = base_ns * (1.0 + scale * rho / (1.0 - rho))
                total_miss_rate = 0.0
                for i in range(n):
                    stall = coef[i] * penalty_ns * sens[i] * freq_a[i]
                    ips = fh[i] / (cpi0[i] + stall) * jit[i]
                    ips_a[i] = ips
                    total_miss_rate += ips * mpki_a[i] * MPKI_SCALE
                new_rho = total_miss_rate * inv_peak
                rho = new_rho if new_rho < rho_cap else rho_cap

            for i in range(n):
                core = cores[i]
                proc = procs[i]
                ips = ips_a[i]
                ips_prev[core] = ips
                apki = apki_a[i]
                weights[core] = apki * ips
                if has_stolen:
                    stolen = stolen_a[core]
                    if stolen:
                        stolen_a[core] = 0.0
                    dt_eff = dt - stolen
                    if dt_eff <= 0.0:
                        continue
                else:
                    dt_eff = dt  # dt - 0.0 == dt: matches the scalar path
                instructions = ips * dt_eff
                misses = ips * mpki_a[i] * MPKI_SCALE * dt_eff
                cnt_i[core] += instructions
                cnt_c[core] += fh[i] * jit[i] * dt_eff
                cnt_a[core] += (
                    instructions * apki * MPKI_SCALE if apki > 0 else misses
                )
                cnt_m[core] += misses
                if isfg[i]:
                    remaining = proc._target_total - proc.progress
                    if instructions >= remaining > 0:
                        dt_to_finish = remaining / ips
                        end_s = now_tick * dt + dt_to_finish
                        miss_share = misses * (remaining / instructions)
                        proc.advance(remaining, miss_share)
                        record = proc.complete_execution(end_s)
                        completions.append((proc, record))
                        leftover = instructions - remaining
                        proc.advance(leftover, misses - miss_share)
                        continue
                proc.progress += instructions
                proc.execution_misses += misses

            if energy is not None:
                energy.accumulate(dt, freqs_list, busy_list)

            cache_tick(weights, dt)
            has_stolen = False
            now_tick += 1
            clock.tick = now_tick
            executed += 1
            if completions:
                break

            if (
                jitter_free and not w_changed and rho == rho_in
                and self._idle_converged(weights)
            ):
                # The occupancy filter and fixed point are at their
                # exact float fixed points: every input of the next tick
                # equals this tick's, so its outputs (and the no-op
                # cache update) are bit-identical.  Precompute the
                # per-tick counter increments; ``dt - 0.0 == dt``, so
                # they match the scalar kernel's stolen-free path.
                for i in range(n):
                    ips = ips_a[i]
                    instructions = ips * dt
                    instr_inc[i] = instructions
                    cyc_inc[i] = fh[i] * jit[i] * dt
                    misses = ips * mpki_a[i] * MPKI_SCALE * dt
                    miss_inc[i] = misses
                    apki = apki_a[i]
                    acc_inc[i] = (
                        instructions * apki * MPKI_SCALE if apki > 0
                        else misses
                    )
                stationary = True

        # Mid-span nothing can observe rho (events break spans), so the
        # per-tick ``memory.observe`` of the scalar kernel collapses to a
        # single write-back at span exit.
        m._rho = rho
        memory.observe(rho)
        if completions:
            for proc, record in completions:
                for listener in listeners:
                    listener(proc, record)
        return executed

    def _idle_converged(self, weights: List[float]) -> bool:
        """Whether every zero-weight core's occupancy is exactly frozen.

        The stationary fast path skips the cache update wholesale,
        which is only sound once the update is an exact no-op for
        *every* core.  Active cores are covered by the ``w_changed``
        check (their occupancy feeds next tick's miss curves); cores
        with zero weight — idle, paused, or APKI-0 — have a 0.0 target
        nothing reads, so their occupancy keeps decaying until the
        inertia step rounds to identity, and stationarity must wait for
        them too.
        """
        m = self._m
        cache = m.cache
        if cache._tau <= 0:
            return True  # snap mode: occupancy equals its target already
        alpha = cache._alpha_cache[1]
        eff = m._cache_eff
        for core, weight in enumerate(weights):
            if weight == 0.0:
                e = eff[core]
                if e != 0.0 and e + alpha * (0.0 - e) != e:
                    return False
        return True
