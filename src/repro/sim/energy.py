"""Per-core energy accounting for the simulated node.

Section 3.1 of the paper argues that frequency-matching alone "falls
short of maximizing efficiency because the processor itself consumes just
25-35% of total system power" — Dirigent instead maximizes *utility per
unit energy* by keeping the whole node busy.  This module provides the
accounting needed to evaluate that claim on the substrate:

* core **dynamic** power follows the classic cubic law ``k * f^3``
  (voltage scales with frequency);
* core **static** power is constant while the core is powered;
* the **platform** (memory, fans, PSU, board) draws a constant overhead,
  sized so the CPU is roughly a third of total system power at full tilt.

The :class:`EnergyModel` integrates power over per-core busy/idle time;
:class:`repro.sim.machine.Machine` feeds it each tick when attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class EnergyConfig:
    """Power-model parameters.

    Defaults approximate a low-power server socket: ~7.5 W dynamic per
    core at 2 GHz, 1 W static per core, and a platform draw that makes
    the CPU ~30% of system power when all six cores run flat out.

    Attributes:
        dynamic_w_per_ghz3: Dynamic power coefficient ``k`` in
            ``P_dyn = k * f_ghz^3`` watts.
        static_w_per_core: Leakage/uncore power per powered core.
        platform_w: Constant rest-of-system power draw.
    """

    dynamic_w_per_ghz3: float = 0.94
    static_w_per_core: float = 1.0
    platform_w: float = 90.0

    def __post_init__(self) -> None:
        if self.dynamic_w_per_ghz3 <= 0:
            raise ConfigurationError("dynamic_w_per_ghz3 must be positive")
        if self.static_w_per_core < 0:
            raise ConfigurationError("static_w_per_core must be >= 0")
        if self.platform_w < 0:
            raise ConfigurationError("platform_w must be >= 0")

    def core_power_w(self, freq_ghz: float, busy: bool) -> float:
        """Power of one core at ``freq_ghz`` (dynamic only while busy)."""
        if freq_ghz < 0:
            raise SimulationError("frequency must be >= 0")
        dynamic = self.dynamic_w_per_ghz3 * freq_ghz**3 if busy else 0.0
        return dynamic + self.static_w_per_core


class EnergyModel:
    """Integrates core and platform power over simulated time."""

    def __init__(self, num_cores: int, config: EnergyConfig = EnergyConfig()) -> None:
        if num_cores < 1:
            raise ConfigurationError("num_cores must be >= 1")
        self.config = config
        self._core_joules: List[float] = [0.0] * num_cores
        self._platform_joules = 0.0
        self._elapsed_s = 0.0

    @property
    def elapsed_s(self) -> float:
        """Total accounted time."""
        return self._elapsed_s

    def accumulate(
        self,
        dt_s: float,
        freqs_ghz: List[float],
        busy: List[bool],
    ) -> None:
        """Account one tick of power.

        Args:
            dt_s: Tick length.
            freqs_ghz: Effective frequency of every core.
            busy: Whether each core executed work this tick.
        """
        if dt_s < 0:
            raise SimulationError("dt_s must be >= 0")
        if len(freqs_ghz) != len(self._core_joules) or len(busy) != len(
            self._core_joules
        ):
            raise SimulationError("need one frequency and busy flag per core")
        for core, (freq, is_busy) in enumerate(zip(freqs_ghz, busy)):
            self._core_joules[core] += (
                self.config.core_power_w(freq, is_busy) * dt_s
            )
        self._platform_joules += self.config.platform_w * dt_s
        self._elapsed_s += dt_s

    def core_joules(self, core: int) -> float:
        """Energy consumed by one core so far."""
        if not 0 <= core < len(self._core_joules):
            raise SimulationError("core %d out of range" % core)
        return self._core_joules[core]

    @property
    def cpu_joules(self) -> float:
        """Energy of all cores."""
        return sum(self._core_joules)

    @property
    def platform_joules(self) -> float:
        """Energy of the non-CPU platform."""
        return self._platform_joules

    @property
    def system_joules(self) -> float:
        """Total node energy."""
        return self.cpu_joules + self._platform_joules

    @property
    def average_system_power_w(self) -> float:
        """Mean system power over the accounted window."""
        if self._elapsed_s <= 0:
            return 0.0
        return self.system_joules / self._elapsed_s
