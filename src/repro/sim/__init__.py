"""Simulated multicore machine substrate.

This package replaces the paper's physical testbed (6-core Xeon E5-2618L
v3 with per-core DVFS, Intel CAT, and performance counters) with a
discrete-time performance model exposing the same control and observation
surface through :class:`repro.sim.osal.SystemInterface`.
"""

from repro.sim.cache import SharedCache, contiguous_mask, full_mask
from repro.sim.config import DEFAULT_FREQ_GRADES_GHZ, PAPER_MACHINE, MachineConfig
from repro.sim.counters import CounterBank, CounterSnapshot
from repro.sim.energy import EnergyConfig, EnergyModel
from repro.sim.frequency import FrequencyGovernor
from repro.sim.machine import Machine
from repro.sim.memguard import BandwidthBudget, MemGuard
from repro.sim.memory import MemorySystem
from repro.sim.osal import SystemInterface
from repro.sim.perf import (
    MissCurveTable,
    PerfInput,
    PerfOutput,
    clear_solver_tables,
    solve_tick,
    solver_table_stats,
)
from repro.sim.process import (
    STATE_PAUSED,
    STATE_RUNNING,
    ExecutionRecord,
    Process,
)
from repro.sim.timebase import TimerWheel, VirtualClock, derive_rng
from repro.sim.trace import MachineTracer, TraceSample, sparkline

__all__ = [
    "DEFAULT_FREQ_GRADES_GHZ",
    "PAPER_MACHINE",
    "MachineConfig",
    "Machine",
    "SystemInterface",
    "SharedCache",
    "full_mask",
    "contiguous_mask",
    "CounterBank",
    "CounterSnapshot",
    "EnergyConfig",
    "EnergyModel",
    "MachineTracer",
    "TraceSample",
    "sparkline",
    "FrequencyGovernor",
    "MemorySystem",
    "MemGuard",
    "BandwidthBudget",
    "MissCurveTable",
    "PerfInput",
    "PerfOutput",
    "solve_tick",
    "solver_table_stats",
    "clear_solver_tables",
    "Process",
    "ExecutionRecord",
    "STATE_RUNNING",
    "STATE_PAUSED",
    "TimerWheel",
    "VirtualClock",
    "derive_rng",
]
