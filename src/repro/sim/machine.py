"""The simulated multicore machine.

Owns the clock, DVFS governor, partitioned LLC, memory system, counters,
and pinned processes, and advances them in lock-step ticks.  It implements
:class:`repro.sim.osal.SystemInterface`, so the Dirigent runtime drives it
exactly as it would drive a real node.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.cache import SharedCache
from repro.sim.config import MachineConfig
from repro.sim.counters import CounterBank, CounterSnapshot
from repro.sim.frequency import FrequencyGovernor
from repro.sim.memory import MemorySystem
from repro.sim.process import ExecutionRecord, Process
from repro.sim.timebase import TimerWheel, VirtualClock, derive_rng
from repro.workloads.spec import WorkloadSpec

CompletionListener = Callable[[Process, ExecutionRecord], None]


class Machine:
    """Discrete-time multicore node with one pinned process per core."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.clock = VirtualClock(self.config.tick_s)
        self._timer_rng = derive_rng(self.config.seed, "timer")
        self.timers = TimerWheel(
            self.clock, self._timer_rng, self.config.timer_jitter_prob
        )
        self.governor = FrequencyGovernor(self.config)
        self.cache = SharedCache(self.config)
        self.memory = MemorySystem(self.config)
        self.counters = CounterBank(self.config.num_cores)
        self._jitter_rngs = [
            derive_rng(self.config.seed, "jitter-core-%d" % core)
            for core in range(self.config.num_cores)
        ]
        self._input_rng = derive_rng(self.config.seed, "input")
        self._procs_by_core: List[Optional[Process]] = (
            [None] * self.config.num_cores
        )
        self._procs_by_pid: Dict[int, Process] = {}
        self._next_pid = 1
        self._stolen_s: List[float] = [0.0] * self.config.num_cores
        self._completion_listeners: List[CompletionListener] = []
        self._rho = 0.0
        self._settled = False
        self._ips_prev: List[float] = [0.0] * self.config.num_cores
        self._energy = None  # optional EnergyModel

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def spawn(self, spec: WorkloadSpec, core: int, nice: int = 0) -> Process:
        """Create a process running ``spec`` pinned to ``core``."""
        if not 0 <= core < self.config.num_cores:
            raise ConfigurationError("core %d out of range" % core)
        if self._procs_by_core[core] is not None:
            raise ConfigurationError("core %d already has a pinned process" % core)
        proc = Process(
            pid=self._next_pid,
            spec=spec,
            core=core,
            nice=nice,
            input_rng=self._input_rng,
            start_s=self.clock.now,
        )
        self._next_pid += 1
        self._procs_by_core[core] = proc
        self._procs_by_pid[proc.pid] = proc
        self._settled = False
        return proc

    def process_on_core(self, core: int) -> Optional[Process]:
        """Process pinned to ``core``, or None when the core is idle."""
        if not 0 <= core < self.config.num_cores:
            raise SimulationError("core %d out of range" % core)
        return self._procs_by_core[core]

    def process_by_pid(self, pid: int) -> Process:
        """Look a process up by pid."""
        try:
            return self._procs_by_pid[pid]
        except KeyError:
            raise SimulationError("no process with pid %d" % pid) from None

    @property
    def processes(self) -> List[Process]:
        """All spawned processes, in core order."""
        return [p for p in self._procs_by_core if p is not None]

    @property
    def foreground_processes(self) -> List[Process]:
        """All FG processes, in core order."""
        return [p for p in self.processes if p.is_foreground]

    @property
    def background_processes(self) -> List[Process]:
        """All BG processes, in core order."""
        return [p for p in self.processes if not p.is_foreground]

    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Register a callback invoked on every FG execution completion."""
        self._completion_listeners.append(listener)

    # ------------------------------------------------------------------
    # SystemInterface implementation
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    def read_counters(self, core: int) -> CounterSnapshot:
        """Cumulative counters of ``core`` as of now."""
        return self.counters.snapshot(core, self.clock.now)

    def num_frequency_grades(self) -> int:
        """Number of DVFS grades on this machine."""
        return self.config.num_grades

    def frequency_grade(self, core: int) -> int:
        """Requested grade index of ``core``."""
        return self.governor.pending_grade(core)

    def set_frequency_grade(self, core: int, grade: int) -> None:
        """Request a DVFS grade for ``core``."""
        self.governor.set_grade(core, grade, self.clock.tick)

    def step_frequency(self, core: int, direction: int) -> bool:
        """Step ``core`` one grade; returns False at a limit."""
        return self.governor.step(core, direction, self.clock.tick)

    def pause(self, pid: int) -> None:
        """Stop the process ``pid``."""
        self.process_by_pid(pid).pause()

    def resume(self, pid: int) -> None:
        """Continue the process ``pid``."""
        self.process_by_pid(pid).resume()

    def is_paused(self, pid: int) -> bool:
        """True when ``pid`` is stopped."""
        return not self.process_by_pid(pid).is_running

    def core_of(self, pid: int) -> int:
        """Core the process ``pid`` is pinned to."""
        return self.process_by_pid(pid).core

    def llc_ways(self) -> int:
        """Total LLC ways."""
        return self.config.llc_ways

    def set_fg_partition(self, fg_cores, fg_ways: int) -> None:
        """Isolate ``fg_ways`` ways for ``fg_cores``."""
        self.cache.set_fg_partition(fg_cores, fg_ways)

    def clear_partitions(self) -> None:
        """Remove all cache isolation."""
        self.cache.clear_partitions()

    def schedule_wakeup(self, delay_s: float, callback) -> None:
        """Schedule ``callback`` through the jittered timer wheel."""
        self.timers.schedule(delay_s, callback)

    def charge_overhead(self, core: int, seconds: float) -> None:
        """Steal ``seconds`` of the current tick from ``core``'s process."""
        if seconds < 0:
            raise SimulationError("overhead must be >= 0")
        if not 0 <= core < self.config.num_cores:
            raise SimulationError("core %d out of range" % core)
        self._stolen_s[core] += seconds

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------

    def settle_cache(self) -> None:
        """Snap cache occupancy to steady state for the current tasks."""
        self.cache.set_weights(self._occupancy_weights())
        self.cache.settle()
        self._settled = True

    def run_ticks(self, ticks: int) -> None:
        """Advance the machine by ``ticks`` ticks."""
        if ticks < 0:
            raise SimulationError("ticks must be >= 0")
        for _ in range(ticks):
            self.tick()

    def run_seconds(self, seconds: float) -> None:
        """Advance the machine by approximately ``seconds``."""
        if seconds < 0:
            raise SimulationError("seconds must be >= 0")
        self.run_ticks(int(round(seconds / self.config.tick_s)))

    def tick(self) -> None:
        """Advance the machine by one tick."""
        if not self._settled:
            self.settle_cache()
        self.governor.tick(self.clock.tick)
        for callback in self.timers.due():
            callback()

        config = self.config
        dt = config.tick_s
        sigma = config.os_jitter_sigma
        mu = -0.5 * sigma * sigma

        # Gather per-core model inputs (one phase lookup per process).
        active: List[Tuple[int, Process, object, float, float, float]] = []
        for core in range(config.num_cores):
            proc = self._procs_by_core[core]
            if proc is None or not proc.is_running:
                continue
            phase = proc.current_phase()
            mpki = phase.mpki(self.cache.effective_ways(core))
            jitter = (
                math.exp(self._jitter_rngs[core].gauss(mu, sigma))
                if sigma > 0
                else 1.0
            )
            freq = self.governor.frequency_ghz(core)
            active.append((core, proc, phase, mpki, jitter, freq))

        # Inline fixed point over memory utilization (see repro.sim.perf).
        memory = self.memory
        base_ns = memory.base_latency_ns
        scale = memory.contention_scale
        rho_cap = memory.rho_cap
        inv_peak = memory.seconds_per_miss_at_peak
        rho = self._rho
        ips_list = [0.0] * len(active)
        for _ in range(3):
            penalty_ns = base_ns * (1.0 + scale * rho / (1.0 - rho))
            total_miss_rate = 0.0
            for idx, (core, proc, phase, mpki, jitter, freq) in enumerate(active):
                stall = mpki * 1e-3 * penalty_ns * phase.mem_sensitivity * freq
                ips = freq * 1e9 / (phase.base_cpi + stall) * jitter
                ips_list[idx] = ips
                total_miss_rate += ips * mpki * 1e-3
            new_rho = total_miss_rate * inv_peak
            rho = new_rho if new_rho < rho_cap else rho_cap
        memory.observe(rho)
        self._rho = rho

        completions: List[Tuple[Process, ExecutionRecord]] = []
        weights = [0.0] * config.num_cores
        for idx, (core, proc, phase, mpki, jitter, freq) in enumerate(active):
            ips = ips_list[idx]
            self._ips_prev[core] = ips
            weights[core] = phase.apki * ips
            stolen = self._stolen_s[core]
            if stolen:
                self._stolen_s[core] = 0.0
            dt_eff = dt - stolen
            if dt_eff <= 0.0:
                continue
            instructions = ips * dt_eff
            misses = ips * mpki * 1e-3 * dt_eff
            accesses = instructions * phase.apki * 1e-3 if phase.apki > 0 else misses
            self.counters.record(
                core,
                instructions=instructions,
                cycles=freq * 1e9 * jitter * dt_eff,
                llc_accesses=accesses,
                llc_misses=misses,
            )
            if proc.is_foreground:
                remaining = proc.target_instructions - proc.progress
                if instructions >= remaining > 0:
                    # Interpolate the completion instant inside the tick.
                    dt_to_finish = remaining / ips
                    end_s = self.clock.now + dt_to_finish
                    miss_share = misses * (remaining / instructions)
                    proc.advance(remaining, miss_share)
                    record = proc.complete_execution(end_s)
                    completions.append((proc, record))
                    # The tick's leftover time feeds the next execution.
                    leftover = instructions - remaining
                    proc.advance(leftover, misses - miss_share)
                    continue
            proc.advance(instructions, misses)

        if self._energy is not None:
            busy = [False] * config.num_cores
            freqs = [0.0] * config.num_cores
            for core in range(config.num_cores):
                freqs[core] = self.governor.frequency_ghz(core)
            for core, proc, phase, mpki, jitter, freq in active:
                busy[core] = True
            self._energy.accumulate(dt, freqs, busy)

        self.cache.set_weights(weights)
        self.cache.step(dt)
        self.clock.advance()

        for proc, record in completions:
            for listener in self._completion_listeners:
                listener(proc, record)

    @property
    def rho(self) -> float:
        """Memory bandwidth utilization of the last tick."""
        return self._rho

    @property
    def energy(self):
        """The attached :class:`repro.sim.energy.EnergyModel`, if any."""
        return self._energy

    def attach_energy_model(self, model) -> None:
        """Attach an energy model to be fed every subsequent tick."""
        self._energy = model

    def _occupancy_weights(self) -> List[float]:
        """Per-core cache-occupancy weights: LLC access *rate* (apki x ips).

        Weighting by rate rather than intensity alone means a frequency-
        throttled or paused task steals less cache, as on real LRU caches.
        """
        weights = [0.0] * self.config.num_cores
        for core in range(self.config.num_cores):
            proc = self._procs_by_core[core]
            if proc is None or not proc.is_running:
                continue
            phase = proc.current_phase()
            ips = self._ips_prev[core]
            if ips <= 0.0:
                # Cold start: estimate the rate from frequency and base CPI.
                ips = self.governor.frequency_ghz(core) * 1e9 / phase.base_cpi
            weights[core] = phase.apki * ips
        return weights
