"""The simulated multicore machine.

Owns the clock, DVFS governor, partitioned LLC, memory system, counters,
and pinned processes, and advances them in lock-step ticks.  It implements
:class:`repro.sim.osal.SystemInterface`, so the Dirigent runtime drives it
exactly as it would drive a real node.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.batch import BACKEND_SCALAR, BatchEngine, resolve_backend
from repro.sim.cache import SharedCache
from repro.sim.config import MachineConfig
from repro.sim.counters import CounterBank, CounterSnapshot
from repro.sim.frequency import FrequencyGovernor
from repro.sim.memory import MemorySystem
from repro.sim.perf import FIXED_POINT_ITERATIONS, MPKI_SCALE
from repro.sim.process import STATE_RUNNING, ExecutionRecord, Process
from repro.sim.timebase import TimerWheel, VirtualClock, derive_rng
from repro.workloads.spec import WorkloadSpec

CompletionListener = Callable[[Process, ExecutionRecord], None]

#: Hot-state attributes the scalar ``tick`` kernel mutates that are
#: *intentionally* absent from the other backends' mirrored-state
#: registries (:data:`repro.sim.vector.CELL_COLUMNS`,
#: :data:`repro.sim.spanplan.KERNEL_STATE`): the ``_b_*`` names are
#: per-tick scratch buffers — gather arrays reloaded from scratch at
#: the top of every tick, never read across ticks — so a backend that
#: skips them loses nothing.  ``repro lint``'s ``COV`` rules parse this
#: allowlist from the module source and flag any entry that stops
#: matching a mutation in the hot path (a stale allowlist is itself an
#: error), so additions here stay honest.
SCALAR_ONLY_STATE = frozenset({
    "_b_core", "_b_proc", "_b_phase", "_b_mpki", "_b_freq", "_b_coef",
    "_b_sens", "_b_fh", "_b_cpi0", "_b_jit", "_b_ips",
})


class Machine:
    """Discrete-time multicore node with one pinned process per core."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config or MachineConfig()
        #: Active simulation backend ("scalar", "batch", or "vector");
        #: resolved from the ``backend`` argument, then
        #: ``REPRO_SIM_BACKEND``, then the default.  Only affects how
        #: ``run_ticks`` advances the machine; ``tick()`` is always the
        #: scalar reference kernel.  A lone vector-backend machine
        #: advances through its batch engine (bit-identical); the fused
        #: cell-axis kernels engage when a
        #: :class:`repro.sim.vector.MultiCell` drives many machines.
        self.backend = resolve_backend(backend)
        self.clock = VirtualClock(self.config.tick_s)
        self._timer_rng = derive_rng(self.config.seed, "timer")
        self.timers = TimerWheel(
            self.clock, self._timer_rng, self.config.timer_jitter_prob
        )
        self.governor = FrequencyGovernor(self.config)
        self.cache = SharedCache(self.config)
        self.memory = MemorySystem(self.config)
        self.counters = CounterBank(self.config.num_cores)
        self._jitter_rngs = [
            derive_rng(self.config.seed, "jitter-core-%d" % core)
            for core in range(self.config.num_cores)
        ]
        self._input_rng = derive_rng(self.config.seed, "input")
        # Hot-path state, hoisted once so tick() avoids per-tick method
        # dispatch and attribute chains (see docs/performance.md).
        num_cores = self.config.num_cores
        self._gauss_fns = [rng.gauss for rng in self._jitter_rngs]
        self._sigma = self.config.os_jitter_sigma
        self._jitter_mu = -0.5 * self._sigma * self._sigma
        self._cnt_arrays = self.counters.hot_arrays()
        self._gov_freqs = self.governor.effective_frequencies()
        self._gov_pending = self.governor.pending_transitions()
        self._timer_heap = self.timers.pending_heap()
        self._cache_eff = self.cache.effective_list()
        self._cache_tick = self.cache.tick_update
        self._b_core = [0] * num_cores
        self._b_proc: List[Optional[Process]] = [None] * num_cores
        self._b_phase: List[object] = [None] * num_cores
        self._b_mpki = [0.0] * num_cores
        self._b_freq = [0.0] * num_cores
        self._b_coef = [0.0] * num_cores
        self._b_sens = [0.0] * num_cores
        self._b_fh = [0.0] * num_cores
        self._b_cpi0 = [0.0] * num_cores
        self._b_jit = [0.0] * num_cores
        self._b_ips = [0.0] * num_cores
        self._procs_by_core: List[Optional[Process]] = (
            [None] * self.config.num_cores
        )
        self._procs_by_pid: Dict[int, Process] = {}
        self._next_pid = 1
        self._stolen_s: List[float] = [0.0] * self.config.num_cores
        self._completion_listeners: List[CompletionListener] = []
        self._rho = 0.0
        self._settled = False
        self._ips_prev: List[float] = [0.0] * self.config.num_cores
        self._energy = None  # optional EnergyModel
        self._batch_engine = (
            None if self.backend == BACKEND_SCALAR else BatchEngine(self)
        )
        # Cached process-list views, invalidated on spawn (the runtime
        # reads these every fine interval; rebuilding them per access
        # showed up in profiles).
        self._proc_list: Optional[List[Process]] = None
        self._fg_list: Optional[List[Process]] = None
        self._bg_list: Optional[List[Process]] = None

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def spawn(self, spec: WorkloadSpec, core: int, nice: int = 0) -> Process:
        """Create a process running ``spec`` pinned to ``core``."""
        if not 0 <= core < self.config.num_cores:
            raise ConfigurationError("core %d out of range" % core)
        if self._procs_by_core[core] is not None:
            raise ConfigurationError("core %d already has a pinned process" % core)
        proc = Process(
            pid=self._next_pid,
            spec=spec,
            core=core,
            nice=nice,
            input_rng=self._input_rng,
            start_s=self.clock.now,
        )
        self._next_pid += 1
        self._procs_by_core[core] = proc
        self._procs_by_pid[proc.pid] = proc
        self._settled = False
        self._proc_list = None
        self._fg_list = None
        self._bg_list = None
        return proc

    def process_on_core(self, core: int) -> Optional[Process]:
        """Process pinned to ``core``, or None when the core is idle."""
        if not 0 <= core < self.config.num_cores:
            raise SimulationError("core %d out of range" % core)
        return self._procs_by_core[core]

    def process_by_pid(self, pid: int) -> Process:
        """Look a process up by pid."""
        try:
            return self._procs_by_pid[pid]
        except KeyError:
            raise SimulationError("no process with pid %d" % pid) from None

    @property
    def processes(self) -> List[Process]:
        """All spawned processes, in core order (cached; don't mutate)."""
        procs = self._proc_list
        if procs is None:
            procs = [p for p in self._procs_by_core if p is not None]
            self._proc_list = procs
        return procs

    @property
    def foreground_processes(self) -> List[Process]:
        """All FG processes, in core order (cached; don't mutate)."""
        procs = self._fg_list
        if procs is None:
            procs = [p for p in self.processes if p.is_foreground]
            self._fg_list = procs
        return procs

    @property
    def background_processes(self) -> List[Process]:
        """All BG processes, in core order (cached; don't mutate)."""
        procs = self._bg_list
        if procs is None:
            procs = [p for p in self.processes if not p.is_foreground]
            self._bg_list = procs
        return procs

    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Register a callback invoked on every FG execution completion."""
        self._completion_listeners.append(listener)

    # ------------------------------------------------------------------
    # SystemInterface implementation
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    def read_counters(self, core: int) -> CounterSnapshot:
        """Cumulative counters of ``core`` as of now."""
        return self.counters.snapshot(core, self.clock.now)

    def num_frequency_grades(self) -> int:
        """Number of DVFS grades on this machine."""
        return self.config.num_grades

    def frequency_grade(self, core: int) -> int:
        """Requested grade index of ``core``."""
        return self.governor.pending_grade(core)

    def set_frequency_grade(self, core: int, grade: int) -> None:
        """Request a DVFS grade for ``core``."""
        self.governor.set_grade(core, grade, self.clock.tick)

    def step_frequency(self, core: int, direction: int) -> bool:
        """Step ``core`` one grade; returns False at a limit."""
        return self.governor.step(core, direction, self.clock.tick)

    def pause(self, pid: int) -> None:
        """Stop the process ``pid``."""
        self.process_by_pid(pid).pause()

    def resume(self, pid: int) -> None:
        """Continue the process ``pid``."""
        self.process_by_pid(pid).resume()

    def is_paused(self, pid: int) -> bool:
        """True when ``pid`` is stopped."""
        return not self.process_by_pid(pid).is_running

    def core_of(self, pid: int) -> int:
        """Core the process ``pid`` is pinned to."""
        return self.process_by_pid(pid).core

    def llc_ways(self) -> int:
        """Total LLC ways."""
        return self.config.llc_ways

    def set_fg_partition(self, fg_cores, fg_ways: int) -> None:
        """Isolate ``fg_ways`` ways for ``fg_cores``."""
        self.cache.set_fg_partition(fg_cores, fg_ways)

    def clear_partitions(self) -> None:
        """Remove all cache isolation."""
        self.cache.clear_partitions()

    def partition_ways(self, core: int) -> int:
        """Ways ``core``'s current LLC mask allows (partition read-back)."""
        return self.cache.mask_ways(core)

    def schedule_wakeup(self, delay_s: float, callback) -> None:
        """Schedule ``callback`` through the jittered timer wheel."""
        self.timers.schedule(delay_s, callback)

    def charge_overhead(self, core: int, seconds: float) -> None:
        """Steal ``seconds`` of the current tick from ``core``'s process."""
        if seconds < 0:
            raise SimulationError("overhead must be >= 0")
        if not 0 <= core < self.config.num_cores:
            raise SimulationError("core %d out of range" % core)
        self._stolen_s[core] += seconds

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------

    def settle_cache(self) -> None:
        """Snap cache occupancy to steady state for the current tasks."""
        self.cache.set_weights(self._occupancy_weights())
        self.cache.settle()
        self._settled = True

    def run_ticks(self, ticks: int) -> None:
        """Advance the machine by ``ticks`` ticks.

        With the batch backend, event-free spans are advanced by the
        fused multi-tick kernel in :mod:`repro.sim.batch`; the scalar
        backend (and every tick that carries an event) goes through the
        reference :meth:`tick` kernel.
        """
        if ticks < 0:
            raise SimulationError("ticks must be >= 0")
        engine = self._batch_engine
        if engine is not None:
            engine.run_ticks(ticks)
            return
        tick = self.tick
        for _ in range(ticks):
            tick()

    def run_seconds(self, seconds: float) -> None:
        """Advance the machine by approximately ``seconds``.

        Any positive duration runs at least one tick, so short sleeps
        cannot silently round down to a no-op.
        """
        if seconds < 0:
            raise SimulationError("seconds must be >= 0")
        ticks = int(round(seconds / self.config.tick_s))
        if ticks == 0 and seconds > 0:
            ticks = 1
        self.run_ticks(ticks)

    def dispatch_events(self) -> None:
        """Run the start-of-tick event preamble without executing the tick.

        Applies due DVFS transitions and fires due timers exactly as the
        first lines of :meth:`tick` would.  The batch engine calls this
        when an event lands on the current tick, then advances the tick
        itself through the fused span kernel; :meth:`tick` performs the
        same preamble inline, so scalar semantics are unchanged.
        """
        if not self._settled:
            self.settle_cache()
        if self._gov_pending:
            self.governor.tick(self.clock.tick)
        if self._timer_heap:
            for callback in self.timers.due():
                callback()

    def tick(self) -> None:
        """Advance the machine by one tick.

        This is the simulator's hot kernel: invariant lookups are hoisted
        into per-entry arrays before the fixed point, counters are
        accumulated through direct array references, and the timer wheel,
        jitter RNG, and energy accounting are skipped outright when idle,
        disabled, or noise-free.  Floating-point evaluation order matches
        the reference model in :mod:`repro.sim.perf` exactly (see
        ``tests/sim/test_machine_model_consistency.py``).
        """
        if not self._settled:
            self.settle_cache()
        clock = self.clock
        now_tick = clock.tick
        if self._gov_pending:
            self.governor.tick(now_tick)
        if self._timer_heap:
            for callback in self.timers.due():
                callback()

        config = self.config
        dt = config.tick_s
        sigma = self._sigma
        mu = self._jitter_mu
        exp_ = math.exp

        # Gather per-core model inputs (one phase lookup per process)
        # into flat reusable buffers.
        cores = self._b_core
        procs_a = self._b_proc
        phases = self._b_phase
        mpki_a = self._b_mpki
        freq_a = self._b_freq
        coef = self._b_coef
        sens = self._b_sens
        fh = self._b_fh
        cpi0 = self._b_cpi0
        jit = self._b_jit
        ips_a = self._b_ips
        eff = self._cache_eff
        gov_freqs = self._gov_freqs
        gauss_fns = self._gauss_fns
        n = 0
        for core, proc in enumerate(self._procs_by_core):
            if proc is None or proc.state != STATE_RUNNING:
                continue
            # Inline Process.current_phase: the cached cursor almost
            # always covers the current progress point.
            progress = proc.progress
            if not proc._phase_start <= progress < proc._phase_end:
                proc._sync_phase_cursor()
            phase = proc._spec.phases[proc._phase_index]
            # Inline PhaseSpec.mpki (same operations, same order).
            w = eff[core]
            if w < 0.0:
                w = 0.0
            floor = phase.mpki_floor
            mpki = floor + (phase.mpki_peak - floor) * exp_(-w / phase.ways_scale)
            jitter = exp_(gauss_fns[core](mu, sigma)) if sigma > 0 else 1.0
            freq = gov_freqs[core]
            cores[n] = core
            procs_a[n] = proc
            phases[n] = phase
            mpki_a[n] = mpki
            freq_a[n] = freq
            coef[n] = mpki * MPKI_SCALE
            sens[n] = phase.mem_sensitivity
            fh[n] = freq * 1e9
            cpi0[n] = phase.base_cpi
            jit[n] = jitter
            n += 1

        # Inline fixed point over memory utilization (see repro.sim.perf).
        memory = self.memory
        base_ns = memory.base_latency_ns
        scale = memory.contention_scale
        rho_cap = memory.rho_cap
        inv_peak = memory.seconds_per_miss_at_peak
        rho = self._rho
        for _ in range(FIXED_POINT_ITERATIONS):
            penalty_ns = base_ns * (1.0 + scale * rho / (1.0 - rho))
            total_miss_rate = 0.0
            for i in range(n):
                stall = coef[i] * penalty_ns * sens[i] * freq_a[i]
                ips = fh[i] / (cpi0[i] + stall) * jit[i]
                ips_a[i] = ips
                total_miss_rate += ips * mpki_a[i] * MPKI_SCALE
            new_rho = total_miss_rate * inv_peak
            rho = new_rho if new_rho < rho_cap else rho_cap
        memory.observe(rho)
        self._rho = rho

        completions: List[Tuple[Process, ExecutionRecord]] = []
        weights = [0.0] * config.num_cores
        ips_prev = self._ips_prev
        stolen_a = self._stolen_s
        cnt_i, cnt_c, cnt_a, cnt_m = self._cnt_arrays
        for i in range(n):
            core = cores[i]
            proc = procs_a[i]
            phase = phases[i]
            ips = ips_a[i]
            ips_prev[core] = ips
            apki = phase.apki
            weights[core] = apki * ips
            stolen = stolen_a[core]
            if stolen:
                stolen_a[core] = 0.0
            dt_eff = dt - stolen
            if dt_eff <= 0.0:
                continue
            instructions = ips * dt_eff
            misses = ips * mpki_a[i] * MPKI_SCALE * dt_eff
            cnt_i[core] += instructions
            cnt_c[core] += fh[i] * jit[i] * dt_eff
            cnt_a[core] += instructions * apki * MPKI_SCALE if apki > 0 else misses
            cnt_m[core] += misses
            if proc.is_fg:
                remaining = proc._target_total - proc.progress
                if instructions >= remaining > 0:
                    # Interpolate the completion instant inside the tick.
                    dt_to_finish = remaining / ips
                    end_s = clock.now + dt_to_finish
                    miss_share = misses * (remaining / instructions)
                    proc.advance(remaining, miss_share)
                    record = proc.complete_execution(end_s)
                    completions.append((proc, record))
                    # The tick's leftover time feeds the next execution.
                    leftover = instructions - remaining
                    proc.advance(leftover, misses - miss_share)
                    continue
            # Inline Process.advance (amounts are non-negative by
            # construction).
            proc.progress += instructions
            proc.execution_misses += misses

        if self._energy is not None:
            busy = [False] * config.num_cores
            freqs = list(gov_freqs)
            for i in range(n):
                busy[cores[i]] = True
            self._energy.accumulate(dt, freqs, busy)

        self._cache_tick(weights, dt)
        clock.tick = now_tick + 1

        if completions:
            for proc, record in completions:
                for listener in self._completion_listeners:
                    listener(proc, record)

    def backend_stats(self) -> Optional[Dict[str, int]]:
        """Batch-engine fast-path counters, or None on the scalar backend.

        See :class:`repro.sim.spanplan.SpanStats` for the fields.
        """
        engine = self._batch_engine
        if engine is None:
            return None
        return engine.stats.as_dict()

    @property
    def rho(self) -> float:
        """Memory bandwidth utilization of the last tick."""
        return self._rho

    @property
    def energy(self):
        """The attached :class:`repro.sim.energy.EnergyModel`, if any."""
        return self._energy

    def attach_energy_model(self, model) -> None:
        """Attach an energy model to be fed every subsequent tick."""
        self._energy = model

    def _occupancy_weights(self) -> List[float]:
        """Per-core cache-occupancy weights: LLC access *rate* (apki x ips).

        Weighting by rate rather than intensity alone means a frequency-
        throttled or paused task steals less cache, as on real LRU caches.
        """
        weights = [0.0] * self.config.num_cores
        for core in range(self.config.num_cores):
            proc = self._procs_by_core[core]
            if proc is None or not proc.is_running:
                continue
            phase = proc.current_phase()
            ips = self._ips_prev[core]
            if ips <= 0.0:
                # Cold start: estimate the rate from frequency and base CPI.
                ips = self.governor.frequency_ghz(core) * 1e9 / phase.base_cpi
            weights[core] = phase.apki * ips
        return weights
