"""Shared memory-bandwidth contention model.

LLC misses from every core drain into a shared memory system with peak
sustainable bandwidth ``mem_peak_gbps``.  The effective miss penalty grows
with utilization following an M/M/1-flavoured queueing curve::

    penalty_ns = base_ns * (1 + scale * rho / (1 - rho))

where ``rho`` is total demanded bandwidth over peak, capped below 1.  This
is the interference channel the paper manages: background tasks with heavy
miss traffic inflate the penalty every other core pays.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.config import MachineConfig


class MemorySystem:
    """Tracks utilization and converts it into a loaded miss penalty."""

    def __init__(self, config: MachineConfig) -> None:
        self._base_ns = config.mem_base_latency_ns
        self._scale = config.mem_contention_scale
        self._rho_cap = config.mem_rho_cap
        self._peak_bytes_per_s = config.mem_peak_gbps * 1e9
        self._line_bytes = config.cache_line_bytes
        # Precomputed so the hot path multiplies instead of dividing; the
        # machine's inline loop and utilization_for() must use the same
        # constant so they round identically.
        self._seconds_per_miss = self._line_bytes / self._peak_bytes_per_s
        self._rho = 0.0

    @property
    def rho(self) -> float:
        """Most recently computed bandwidth utilization in [0, rho_cap]."""
        return self._rho

    @property
    def base_latency_ns(self) -> float:
        """Unloaded miss penalty in nanoseconds."""
        return self._base_ns

    @property
    def contention_scale(self) -> float:
        """Queueing-inflation strength of the penalty curve."""
        return self._scale

    @property
    def rho_cap(self) -> float:
        """Upper bound on modeled utilization."""
        return self._rho_cap

    @property
    def seconds_per_miss_at_peak(self) -> float:
        """Line transfer time at peak bandwidth (bytes/miss over peak B/s)."""
        return self._seconds_per_miss

    def observe(self, rho: float) -> None:
        """Record an externally computed utilization (fast-path ticks)."""
        if rho < 0:
            raise SimulationError("rho must be >= 0")
        self._rho = min(rho, self._rho_cap)

    def utilization_for(self, total_misses_per_s: float) -> float:
        """Utilization implied by an aggregate miss rate (misses/second)."""
        if total_misses_per_s < 0:
            raise SimulationError("miss rate must be >= 0")
        return min(self._rho_cap, total_misses_per_s * self._seconds_per_miss)

    def penalty_ns(self, rho: float) -> float:
        """Loaded miss penalty at utilization ``rho``."""
        if rho < 0:
            raise SimulationError("rho must be >= 0")
        rho = min(rho, self._rho_cap)
        return self._base_ns * (1.0 + self._scale * rho / (1.0 - rho))

    def update(self, total_misses_per_s: float) -> float:
        """Record the tick's aggregate miss rate; return the loaded penalty."""
        self._rho = self.utilization_for(total_misses_per_s)
        return self.penalty_ns(self._rho)
