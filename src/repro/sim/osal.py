"""OS/hardware abstraction the Dirigent runtime is written against.

The real Dirigent drives Linux cpufreq, Intel CAT MSRs, performance
counters, SIGSTOP/SIGCONT, and ``sleep``-based timers.  Everything the
runtime needs is captured by :class:`SystemInterface`; the simulator's
:class:`repro.sim.machine.Machine` implements it, and nothing in
``repro.core`` imports simulator internals.  Porting Dirigent to real
hardware means implementing this protocol with syscalls instead.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.sim.counters import CounterSnapshot

WakeupCallback = Callable[[], None]


@runtime_checkable
class SystemInterface(Protocol):
    """Control and observation surface of one multicore node."""

    def now(self) -> float:
        """Current time in seconds."""

    def read_counters(self, core: int) -> CounterSnapshot:
        """Read the cumulative performance counters of ``core``."""

    def num_frequency_grades(self) -> int:
        """Number of available DVFS grades."""

    def frequency_grade(self, core: int) -> int:
        """Requested DVFS grade index of ``core`` (0 = slowest)."""

    def set_frequency_grade(self, core: int, grade: int) -> None:
        """Request ``core`` to run at grade ``grade``."""

    def step_frequency(self, core: int, direction: int) -> bool:
        """Move ``core`` one grade up (+1) or down (-1); False at a limit."""

    def pause(self, pid: int) -> None:
        """Stop a process (SIGSTOP analogue)."""

    def resume(self, pid: int) -> None:
        """Continue a stopped process (SIGCONT analogue)."""

    def is_paused(self, pid: int) -> bool:
        """True when ``pid`` is stopped."""

    def core_of(self, pid: int) -> int:
        """Core the process is pinned to."""

    def llc_ways(self) -> int:
        """Total ways of the last-level cache."""

    def set_fg_partition(self, fg_cores: Iterable[int], fg_ways: int) -> None:
        """Isolate ``fg_ways`` LLC ways for ``fg_cores`` (CAT analogue)."""

    def clear_partitions(self) -> None:
        """Remove all cache isolation."""

    def partition_ways(self, core: int) -> int:
        """LLC ways ``core``'s current way-mask allows it to reach.

        The read-back of :meth:`set_fg_partition` (reading the CAT MSR on
        real hardware): after ``set_fg_partition(cores, w)`` each core in
        ``cores`` reports ``w``.  Hardened controllers verify actuations
        against this instead of trusting the write."""

    def schedule_wakeup(self, delay_s: float, callback: WakeupCallback) -> None:
        """Invoke ``callback`` after ``delay_s`` (jittered sleep analogue)."""

    def charge_overhead(self, core: int, seconds: float) -> None:
        """Account runtime CPU time stolen from the process on ``core``."""
