"""Way-partitioned shared last-level cache with inertia.

Models Intel Cache Allocation Technology the way Dirigent uses it: each
core has a bitmask of LLC ways it may allocate into.  Within the ways a
core can reach, occupancy is contended with every other core whose mask
overlaps; the model splits each way's capacity proportionally to the
access intensity (APKI) of the competing cores.

Repartitioning does not take effect instantly.  Actual per-core occupancy
follows the target with an exponential time constant
(``cache_inertia_tau_s``), reproducing the "cache inertia" effect the
paper cites as the reason cache partitioning is only useful for coarse
time scale control.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.config import MachineConfig


def full_mask(num_ways: int) -> int:
    """Bitmask with all ``num_ways`` ways set."""
    return (1 << num_ways) - 1


def contiguous_mask(first_way: int, count: int) -> int:
    """Bitmask covering ``count`` ways starting at ``first_way``."""
    if first_way < 0 or count < 0:
        raise ConfigurationError("mask bounds must be non-negative")
    return ((1 << count) - 1) << first_way


class SharedCache:
    """Occupancy model of the way-partitioned LLC."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self._num_ways = config.llc_ways
        self._tau = config.cache_inertia_tau_s
        all_ways = full_mask(self._num_ways)
        self._mask: List[int] = [all_ways] * config.num_cores
        # Start every core at an equal split of the full cache.
        start = self._num_ways / config.num_cores
        self._effective: List[float] = [start] * config.num_cores
        self._target: List[float] = list(self._effective)
        self._targets_dirty = True
        self._weights: List[float] = [1.0] * config.num_cores
        # Hot-path caches: the mask/active-core grouping only changes on
        # repartition or pause/idle transitions, while weights change every
        # tick; grouping is cached so per-tick refreshes are pure
        # arithmetic.  _alpha_cache memoizes the inertia filter gain.
        self._groups_dirty = True
        self._groups: List[Tuple[int, List[int]]] = []  # (ways, cores)
        self._groups_disjoint = True
        self._active_bits = -1
        self._alpha_cache: Tuple[float, float] = (-1.0, 0.0)
        self._zeros: List[float] = [0.0] * config.num_cores
        # Span-plan support (repro.sim.spanplan): the mask epoch counts
        # repartitions so compiled span kernels can validate their baked
        # grouping with one integer compare; _span_groupings memoizes
        # the grouping per hypothetical active set within an epoch.
        self._mask_epoch = 0
        self._span_groupings: dict = {}

    @property
    def num_ways(self) -> int:
        """Total ways in the LLC."""
        return self._num_ways

    def mask(self, core: int) -> int:
        """Current way mask of ``core``."""
        self._check_core(core)
        return self._mask[core]

    def mask_ways(self, core: int) -> int:
        """Number of ways ``core``'s mask allows it to reach."""
        return bin(self.mask(core)).count("1")

    def set_mask(self, core: int, mask: int) -> None:
        """Assign a way bitmask to ``core`` (CAT-style)."""
        self._check_core(core)
        if mask <= 0 or mask > full_mask(self._num_ways):
            raise ConfigurationError(
                "mask %#x invalid for a %d-way cache" % (mask, self._num_ways)
            )
        if self._mask[core] != mask:
            self._mask[core] = mask
            self._targets_dirty = True
            self._groups_dirty = True
            self._mask_epoch += 1
            self._span_groupings.clear()

    def set_fg_partition(
        self, fg_cores: Iterable[int], fg_ways: int
    ) -> None:
        """Isolate ``fg_ways`` ways for ``fg_cores``; the rest share the remainder.

        This mirrors the paper's policy of removing the FG partition's ways
        from the list of ways BG tasks may use.
        """
        fg_set = set(fg_cores)
        if not 1 <= fg_ways <= self._num_ways - 1:
            raise ConfigurationError(
                "fg_ways must leave at least one way for BG tasks"
            )
        fg_mask = contiguous_mask(0, fg_ways)
        bg_mask = contiguous_mask(fg_ways, self._num_ways - fg_ways)
        for core in range(self._config.num_cores):
            self.set_mask(core, fg_mask if core in fg_set else bg_mask)

    def clear_partitions(self) -> None:
        """Let every core allocate into every way (no isolation)."""
        mask = full_mask(self._num_ways)
        for core in range(self._config.num_cores):
            self.set_mask(core, mask)

    def set_weights(self, weights: Sequence[float]) -> None:
        """Set the per-core occupancy weights (phase APKI; 0 when idle/paused)."""
        if len(weights) != self._config.num_cores:
            raise SimulationError("need one weight per core")
        new = list(weights)
        if min(new) < 0:
            raise SimulationError("weights must be >= 0")
        if new != self._weights:
            active_bits = 0
            for core, weight in enumerate(new):
                if weight > 0:
                    active_bits |= 1 << core
            if active_bits != self._active_bits:
                self._active_bits = active_bits
                self._groups_dirty = True
            self._weights = new
            self._targets_dirty = True

    def target_ways(self, core: int) -> float:
        """Steady-state occupancy of ``core`` in ways for current masks/weights."""
        self._refresh_targets()
        self._check_core(core)
        return self._target[core]

    def effective_ways(self, core: int) -> float:
        """Inertia-filtered occupancy of ``core`` in ways."""
        self._check_core(core)
        return self._effective[core]

    def effective_list(self) -> List[float]:
        """Live per-core effective occupancies (stable list).

        Hot-path accessor: callers must treat the returned list as
        read-only; it is updated in place by :meth:`step`/:meth:`settle`.
        """
        return self._effective

    def step(self, dt_s: float) -> None:
        """Advance occupancies toward their targets by ``dt_s`` seconds."""
        if dt_s < 0:
            raise SimulationError("dt_s must be >= 0")
        self._refresh_targets()
        if self._tau <= 0:
            self._effective[:] = self._target
            return
        cached_dt, alpha = self._alpha_cache
        if dt_s != cached_dt:
            alpha = 1.0 - math.exp(-dt_s / self._tau)
            self._alpha_cache = (dt_s, alpha)
        effective = self._effective
        target = self._target
        for core in range(self._config.num_cores):
            gap = target[core] - effective[core]
            effective[core] += alpha * gap

    def settle(self) -> None:
        """Snap occupancies to their targets (used for fresh machines)."""
        self._refresh_targets()
        self._effective[:] = self._target

    def tick_update(self, weights: Sequence[float], dt_s: float) -> None:
        """Fused :meth:`set_weights` + :meth:`step` for the tick kernel.

        The caller guarantees one non-negative weight per core and a
        positive ``dt_s``; semantics are otherwise identical to calling
        the two methods in sequence.  Weights change nearly every tick
        (they embed the instantaneous access rate), so this path avoids
        the per-call validation, list copy, and double dispatch.
        """
        if weights != self._weights:
            active_bits = 0
            for core, weight in enumerate(weights):
                if weight > 0:
                    active_bits |= 1 << core
            if active_bits != self._active_bits:
                self._active_bits = active_bits
                self._groups_dirty = True
            self._weights[:] = weights
            self._targets_dirty = True
        if self._targets_dirty:
            self._refresh_targets()
        if self._tau <= 0:
            self._effective[:] = self._target
            return
        cached_dt, alpha = self._alpha_cache
        if dt_s != cached_dt:
            alpha = 1.0 - math.exp(-dt_s / self._tau)
            self._alpha_cache = (dt_s, alpha)
        effective = self._effective
        target = self._target
        for core in range(len(effective)):
            gap = target[core] - effective[core]
            effective[core] += alpha * gap

    @property
    def mask_epoch(self) -> int:
        """Counter bumped on every effective mask change (repartition)."""
        return self._mask_epoch

    def span_grouping(
        self, active_bits: int
    ) -> Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], bool]:
        """Mask grouping for a hypothetical active-core set (memoized).

        Returns ``(groups, disjoint)`` with ``groups`` a tuple of
        ``(way_count, cores)`` in exactly the order
        :meth:`_rebuild_groups` would produce for the same active set.
        Used by span plans, which fix the active set for a whole span.
        """
        got = self._span_groupings.get(active_bits)
        if got is None:
            groups: dict = {}
            for core in range(self._config.num_cores):
                if active_bits >> core & 1:
                    groups.setdefault(self._mask[core], []).append(core)
            masks = list(groups)
            disjoint = True
            for i, left in enumerate(masks):
                for right in masks[i + 1:]:
                    if left & right:
                        disjoint = False
                        break
                if not disjoint:
                    break
            got = (
                tuple(
                    (bin(mask).count("1"), tuple(cores))
                    for mask, cores in groups.items()
                ),
                disjoint,
            )
            self._span_groupings[active_bits] = got
        return got

    def inertia_alpha(self, dt_s: float) -> float:
        """Inertia-filter gain for a ``dt_s`` step (pure; no caching)."""
        if self._tau <= 0:
            raise SimulationError("inertia_alpha undefined for tau <= 0")
        cached_dt, alpha = self._alpha_cache
        if dt_s == cached_dt:
            return alpha
        return 1.0 - math.exp(-dt_s / self._tau)

    def span_commit(
        self,
        weights: Sequence[float],
        targets: Sequence[float],
        active_bits: int,
        groups: List[Tuple[int, List[int]]],
        disjoint: bool,
        alpha_entry: Optional[Tuple[float, float]],
    ) -> None:
        """Install span-final occupancy state from a compiled kernel.

        The kernel updated ``self._effective`` in place tick by tick;
        this writes back the matching weights, targets, and grouping
        exactly as a trailing :meth:`tick_update` would have left them
        (``alpha_entry`` is None in snap mode, where ``tick_update``
        never touches the alpha cache).
        """
        self._weights[:] = weights
        self._target[:] = targets
        self._targets_dirty = False
        self._groups = groups
        self._groups_disjoint = disjoint
        self._groups_dirty = False
        self._active_bits = active_bits
        if alpha_entry is not None:
            self._alpha_cache = alpha_entry

    def _rebuild_groups(self) -> None:
        """Recompute the mask/active-core grouping (rare; see below).

        Grouping depends only on the way masks and on *which* cores are
        active, both of which change orders of magnitude less often than
        the per-tick weights, so the result is cached.
        """
        num_cores = self._config.num_cores
        active_bits = 0
        groups = {}
        for core in range(num_cores):
            if self._weights[core] > 0:
                active_bits |= 1 << core
                groups.setdefault(self._mask[core], []).append(core)
        masks = list(groups)
        disjoint = True
        for i, left in enumerate(masks):
            for right in masks[i + 1:]:
                if left & right:
                    disjoint = False
                    break
            if not disjoint:
                break
        self._groups = [
            (bin(mask).count("1"), cores) for mask, cores in groups.items()
        ]
        self._groups_disjoint = disjoint
        self._active_bits = active_bits
        self._groups_dirty = False

    def _refresh_targets(self) -> None:
        if not self._targets_dirty:
            return
        if self._groups_dirty:
            self._rebuild_groups()
        targets = self._target
        targets[:] = self._zeros
        weights = self._weights
        # Typical configurations (fully shared, or a disjoint FG/BG
        # partition) produce groups with pairwise disjoint masks, for
        # which occupancy splits independently inside each group;
        # arbitrary overlapping masks take the exact per-way path.
        if self._groups_disjoint:
            for ways, cores in self._groups:
                total = 0.0
                for core in cores:
                    total += weights[core]
                for core in cores:
                    targets[core] = ways * weights[core] / total
        else:
            for way in range(self._num_ways):
                bit = 1 << way
                sharers = [
                    core for core, cores_mask in enumerate(self._mask)
                    if cores_mask & bit and weights[core] > 0
                ]
                if not sharers:
                    continue
                total = sum(weights[core] for core in sharers)
                for core in sharers:
                    targets[core] += weights[core] / total
        self._targets_dirty = False

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self._config.num_cores:
            raise SimulationError("core %d out of range" % core)
