"""Virtual clock and jittered timer wheel for the simulator.

The machine advances in fixed ticks.  Timers (used by the Dirigent runtime's
periodic ``sleep``-based sampling) are quantized to tick boundaries and may
fire one tick late with configurable probability, modeling the sleep-timer
error that the paper explicitly corrects for (``dT_i != dT``).
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

TimerCallback = Callable[[], None]


class VirtualClock:
    """Discrete virtual clock counting ticks of fixed length."""

    def __init__(self, tick_s: float) -> None:
        if tick_s <= 0:
            raise SimulationError("tick_s must be positive")
        self.tick_s = tick_s
        #: Current tick index (number of completed ticks).  Public plain
        #: attribute so hot loops (the machine's tick kernel and the batch
        #: engine) read and advance it without property dispatch; treat it
        #: as owned by whichever engine is driving the machine.
        self.tick = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.tick * self.tick_s

    def advance(self) -> None:
        """Advance the clock by one tick."""
        self.tick += 1

    def ticks_for(self, seconds: float) -> int:
        """Number of whole ticks closest to ``seconds`` (at least 1).

        Exact half-tick delays round *up* (``2.5 -> 3``): Python's
        built-in ``round`` uses banker's rounding, under which a timer
        for an exact half-tick delay would silently fire a tick early
        whenever the nearest even count is the lower one.
        """
        if seconds <= 0:
            raise SimulationError("timer delay must be positive")
        return max(1, int(seconds / self.tick_s + 0.5))


class TimerWheel:
    """Min-heap of pending timers with optional one-tick lateness jitter."""

    def __init__(
        self,
        clock: VirtualClock,
        rng: Optional[random.Random] = None,
        jitter_prob: float = 0.0,
    ) -> None:
        self._clock = clock
        self._rng = rng or random.Random(0)
        self._jitter_prob = jitter_prob
        self._heap: List[Tuple[int, int, TimerCallback]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay_s: float, callback: TimerCallback) -> int:
        """Schedule ``callback`` to fire ``delay_s`` from now.

        Returns the tick index at which the timer will actually fire,
        which may be one tick later than requested due to jitter.
        """
        fire_tick = self._clock.tick + self._clock.ticks_for(delay_s)
        if self._jitter_prob > 0 and self._rng.random() < self._jitter_prob:
            fire_tick += 1
        heapq.heappush(self._heap, (fire_tick, self._seq, callback))
        self._seq += 1
        return fire_tick

    def next_deadline(self) -> Optional[int]:
        """Tick index of the earliest pending timer, or None when empty.

        A cheap peek — nothing is popped — used by the batch engine to
        bound its event horizon.
        """
        heap = self._heap
        return heap[0][0] if heap else None

    def pending_heap(self) -> List[Tuple[int, int, TimerCallback]]:
        """Live heap of pending timers (stable list).

        Hot-path accessor: callers must treat the returned list as
        read-only; it is mutated in place by :meth:`schedule`,
        :meth:`due`, and :meth:`clear`, so a reference hoisted once
        stays valid for the wheel's lifetime (the machine's tick kernel
        uses it for its is-anything-pending check).
        """
        return self._heap

    def due(self) -> List[TimerCallback]:
        """Pop and return every callback due at the current tick."""
        fired: List[TimerCallback] = []
        now = self._clock.tick
        while self._heap and self._heap[0][0] <= now:
            __, __, callback = heapq.heappop(self._heap)
            fired.append(callback)
        return fired

    def clear(self) -> None:
        """Drop all pending timers."""
        self._heap.clear()


def derive_rng(seed: int, stream: str) -> random.Random:
    """Return a deterministic RNG for a named sub-stream of ``seed``.

    Independent streams keep, e.g., OS jitter reproducible regardless of
    how many timer draws occur, which keeps experiments comparable across
    policies.
    """
    return random.Random("%d/%s" % (seed, stream))
