"""Rotate background workloads: context-switch style interference.

To mimic the varying interference caused by context switches, the paper
forms two-benchmark BG workloads from SPEC 2006 and randomly switches each
BG core between the two paired benchmarks every time an FG task completes.
The pairs used are (lbm+namd), (lib+namd), (lbm+soplex) and (lib+soplex).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workloads.background import ROTATE_COMPONENTS
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # imported lazily to avoid a sim <-> workloads cycle
    from repro.sim.machine import Machine
    from repro.sim.process import ExecutionRecord, Process


@dataclass(frozen=True)
class RotatePair:
    """A two-benchmark rotating BG workload.

    Attributes:
        name: Display name, e.g. ``"lbm+namd"``.
        first: First component workload.
        second: Second component workload.
    """

    name: str
    first: WorkloadSpec
    second: WorkloadSpec

    @property
    def components(self) -> Tuple[WorkloadSpec, WorkloadSpec]:
        """Both component specs."""
        return (self.first, self.second)


def make_pair(first: str, second: str) -> RotatePair:
    """Build a rotate pair from two component names."""
    try:
        a = ROTATE_COMPONENTS[first]
        b = ROTATE_COMPONENTS[second]
    except KeyError as missing:
        raise WorkloadError(
            "unknown rotate component %s; available: %s"
            % (missing, sorted(ROTATE_COMPONENTS))
        ) from None
    return RotatePair(name="%s+%s" % (first, second), first=a, second=b)


#: The four rotate pairs evaluated in the paper (Section 5.1), keyed by
#: the shorthand used in Figure 9b ("lib" abbreviates libquantum).
ROTATE_PAIRS: Dict[str, RotatePair] = {
    pair.name: pair
    for pair in (
        make_pair("lbm", "namd"),
        make_pair("libquantum", "namd"),
        make_pair("lbm", "soplex"),
        make_pair("libquantum", "soplex"),
    )
}

#: Rotate pair names in catalog order.
ROTATE_PAIR_NAMES: Tuple[str, ...] = tuple(ROTATE_PAIRS)


class RotateManager:
    """Switches rotating BG processes on every FG completion.

    Each managed BG process randomly receives one of its pair's two
    components whenever any FG task execution completes, modeling tasks
    being context-switched in and out of the node.
    """

    def __init__(
        self,
        machine: "Machine",
        pair: RotatePair,
        processes: Sequence["Process"],
        seed: int = 0,
    ) -> None:
        if not processes:
            raise WorkloadError("RotateManager needs at least one BG process")
        for proc in processes:
            if proc.is_foreground:
                raise WorkloadError("cannot rotate a foreground process")
        self._machine = machine
        self._pair = pair
        self._processes = list(processes)
        self._rng = random.Random("%d/rotate/%s" % (seed, pair.name))
        self.switch_count = 0
        machine.add_completion_listener(self._on_completion)

    @property
    def pair(self) -> RotatePair:
        """The rotate pair being managed."""
        return self._pair

    def _on_completion(self, proc: "Process", record: "ExecutionRecord") -> None:
        del proc, record  # any FG completion triggers a rotation
        now = self._machine.now()
        for bg in self._processes:
            spec = self._rng.choice(self._pair.components)
            if spec.name != bg.spec.name:
                bg.switch_spec(spec, now)
                self.switch_count += 1


def spawn_rotating_background(
    machine: "Machine",
    pair: RotatePair,
    cores: Sequence[int],
    nice: int = 5,
    seed: int = 0,
) -> List["Process"]:
    """Spawn one rotating BG process per core and attach a manager.

    The initial component alternates across cores so both benchmarks are
    present from the start, as when a scheduler backfills a node.
    """
    procs: List["Process"] = []
    for index, core in enumerate(cores):
        spec = pair.components[index % 2]
        procs.append(machine.spawn(spec, core=core, nice=nice))
    RotateManager(machine, pair, procs, seed=seed)
    return procs
