"""Unified workload registry (the paper's Table 1).

Resolves workload and rotate-pair names to specs and renders the Table 1
inventory.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.background import (
    BACKGROUND_WORKLOADS,
    ROTATE_COMPONENTS,
    SINGLE_BG_NAMES,
    SINGLE_BG_WORKLOADS,
)
from repro.workloads.parsec import FOREGROUND_NAMES, FOREGROUND_WORKLOADS
from repro.workloads.rotate import ROTATE_PAIR_NAMES, ROTATE_PAIRS, RotatePair
from repro.workloads.spec import WorkloadSpec

#: All concrete workloads (FG + BG components) by name.
ALL_WORKLOADS: Dict[str, WorkloadSpec] = {
    **FOREGROUND_WORKLOADS,
    **BACKGROUND_WORKLOADS,
}


def get_workload(name: str) -> WorkloadSpec:
    """Resolve a workload name to its spec.

    Raises:
        WorkloadError: for unknown names.
    """
    try:
        return ALL_WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            "unknown workload %r; available: %s" % (name, sorted(ALL_WORKLOADS))
        ) from None


def get_rotate_pair(name: str) -> RotatePair:
    """Resolve a rotate-pair name (e.g. ``"lbm+namd"``) to its pair."""
    try:
        return ROTATE_PAIRS[name]
    except KeyError:
        raise WorkloadError(
            "unknown rotate pair %r; available: %s" % (name, sorted(ROTATE_PAIRS))
        ) from None


def foreground_names() -> Tuple[str, ...]:
    """FG workload names in Table 1 order."""
    return FOREGROUND_NAMES


def single_bg_names() -> Tuple[str, ...]:
    """Single-BG workload names in Table 1 order."""
    return SINGLE_BG_NAMES


def rotate_pair_names() -> Tuple[str, ...]:
    """Rotate-pair names in catalog order."""
    return ROTATE_PAIR_NAMES


def table1_rows() -> List[Tuple[str, str, str]]:
    """Rows of the paper's Table 1: (type, name, description)."""
    rows: List[Tuple[str, str, str]] = []
    for name in FOREGROUND_NAMES:
        rows.append(("FG", name, FOREGROUND_WORKLOADS[name].description))
    for name in SINGLE_BG_NAMES:
        rows.append(("Single BG", name, SINGLE_BG_WORKLOADS[name].description))
    for name in ROTATE_COMPONENTS:
        rows.append(("Rotate BG", name, ROTATE_COMPONENTS[name].description))
    return rows


def render_table1() -> str:
    """Render Table 1 as fixed-width text."""
    rows = table1_rows()
    width_type = max(len(r[0]) for r in rows)
    width_name = max(len(r[1]) for r in rows)
    lines = ["%-*s  %-*s  %s" % (width_type, "Type", width_name, "Name", "Description")]
    for kind, name, desc in rows:
        lines.append("%-*s  %-*s  %s" % (width_type, kind, width_name, name, desc))
    return "\n".join(lines)
