"""Background workload catalog: batch tasks with strong phase behaviour.

The paper's standalone BG workloads — ``bwaves`` (SPEC CPU2006), and
``PCA`` and ``RS`` from MLPack — were chosen specifically because they
exhibit strong phase changes with respect to interference; workloads
without phase behaviour "do not pose significant challenges to the
Dirigent predictor".  These analogues alternate between memory-heavy and
compute-heavy phases whose durations are deliberately incommensurate with
FG execution times, so successive FG executions see different contention
mixes — the paper's main source of task-to-task variation.

The rotate-pair components (namd, soplex, libquantum, lbm from SPEC 2006)
live here too; :mod:`repro.workloads.rotate` assembles them into pairs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.spec import KIND_BG, PhaseSpec, WorkloadSpec

#: One giga-instruction.
GI = 1e9


def _phase(
    name: str,
    gi: float,
    base_cpi: float,
    apki: float,
    mpki_floor: float,
    mpki_peak: float,
    ways_scale: float,
    mem_sensitivity: float = 1.0,
) -> PhaseSpec:
    return PhaseSpec(
        name=name,
        instructions=gi * GI,
        base_cpi=base_cpi,
        apki=apki,
        mpki_floor=mpki_floor,
        mpki_peak=mpki_peak,
        ways_scale=ways_scale,
        mem_sensitivity=mem_sensitivity,
    )


# ---------------------------------------------------------------------------
# Standalone BG workloads (strong phase changes)
# ---------------------------------------------------------------------------

BWAVES = WorkloadSpec(
    name="bwaves",
    kind=KIND_BG,
    description="Simulation of blast waves in 3D (SPEC CPU2006)",
    phases=(
        _phase("solve-stream", 4.20, 0.80, 48.0, 1.6, 2.6, 2.5, 0.80),
        _phase("jacobian", 10.00, 0.62, 5.0, 0.25, 0.8, 4.0, 0.90),
        _phase("flux-stream", 3.60, 0.82, 52.0, 1.8, 2.8, 2.5, 0.80),
        _phase("update", 8.40, 0.60, 4.0, 0.20, 0.7, 3.5, 0.90),
    ),
)

PCA = WorkloadSpec(
    name="pca",
    kind=KIND_BG,
    description="Principal Component Analysis (MLPack)",
    phases=(
        _phase("covariance", 6.60, 0.72, 42.0, 1.2, 2.6, 6.0, 0.80),
        _phase("eigen", 13.00, 0.58, 3.0, 0.15, 0.6, 3.0, 0.95),
        _phase("transform", 3.30, 0.76, 34.0, 0.9, 2.0, 5.0, 0.85),
    ),
)

RANGE_SEARCH = WorkloadSpec(
    name="rs",
    kind=KIND_BG,
    description="Range Search (MLPack)",
    phases=(
        # Short, violent bursts: RS produces the paper's hardest-to-predict
        # interference (12.5% error with streamcluster as FG).
        _phase("tree-descend", 2.80, 0.78, 50.0, 1.8, 3.2, 5.0, 0.75),
        _phase("leaf-scan", 6.20, 0.58, 3.0, 0.12, 0.5, 3.0, 0.95),
        _phase("neighbor-burst", 2.30, 0.82, 58.0, 2.2, 3.8, 5.5, 0.72),
        _phase("collect", 5.40, 0.60, 3.0, 0.12, 0.5, 3.0, 0.95),
    ),
)

# ---------------------------------------------------------------------------
# Rotate-pair components (SPEC CPU2006)
# ---------------------------------------------------------------------------

NAMD = WorkloadSpec(
    name="namd",
    kind=KIND_BG,
    description="Biomolecular system simulation (SPEC CPU2006)",
    phases=(
        _phase("pairlists", 8.00, 0.62, 5.0, 0.30, 0.9, 3.0, 1.0),
        _phase("forces", 12.00, 0.56, 4.0, 0.25, 0.8, 3.0, 1.0),
    ),
)

SOPLEX = WorkloadSpec(
    name="soplex",
    kind=KIND_BG,
    description="Linear program solver (SPEC CPU2006)",
    phases=(
        _phase("factorize", 4.60, 0.74, 40.0, 0.9, 2.4, 7.0, 0.80),
        _phase("price", 6.00, 0.60, 7.0, 0.30, 1.0, 5.0, 0.90),
        _phase("update-basis", 4.00, 0.72, 34.0, 0.8, 2.0, 6.0, 0.80),
    ),
)

LIBQUANTUM = WorkloadSpec(
    name="libquantum",
    kind=KIND_BG,
    description="Simulation of a quantum computer (SPEC CPU2006)",
    phases=(
        _phase("gate-sweep", 7.00, 0.80, 54.0, 2.0, 2.6, 2.0, 0.75),
        _phase("toffoli", 5.00, 0.76, 46.0, 1.7, 2.2, 2.0, 0.78),
    ),
)

LBM = WorkloadSpec(
    name="lbm",
    kind=KIND_BG,
    description="Simulation of fluids with free surfaces (SPEC CPU2006)",
    phases=(
        _phase("collide-stream", 8.00, 0.84, 60.0, 2.4, 3.0, 2.0, 0.72),
        _phase("boundaries", 4.40, 0.62, 9.0, 0.5, 1.2, 3.0, 0.90),
    ),
)

#: Standalone BG workloads used in the "Single BG" mixes.
SINGLE_BG_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (BWAVES, PCA, RANGE_SEARCH)
}

#: Components available for rotate pairs.
ROTATE_COMPONENTS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (NAMD, SOPLEX, LIBQUANTUM, LBM)
}

#: All BG workload specs by name.
BACKGROUND_WORKLOADS: Dict[str, WorkloadSpec] = {
    **SINGLE_BG_WORKLOADS,
    **ROTATE_COMPONENTS,
}

#: Single-BG names in the paper's Table 1 order.
SINGLE_BG_NAMES: Tuple[str, ...] = tuple(SINGLE_BG_WORKLOADS)
