"""Workload specifications: phase-structured synthetic programs.

The paper's workloads are real binaries (PARSEC, SPEC CPU2006, MLPack).
Here each workload is a sequence of *phases*; a phase is characterized by
its instruction count, its compute intensity (base CPI), and its cache
behaviour (an exponential miss-ratio curve over allocated LLC ways).  The
Dirigent runtime only ever observes the (instructions, misses) time series
these produce, so phase programs are a faithful substitute for the
predictor and the controllers.

Miss-ratio curves follow the classic exponential form::

    mpki(ways) = mpki_floor + (mpki_peak - mpki_floor) * exp(-ways / ways_scale)

Streaming workloads (e.g. lbm, libquantum) have ``mpki_floor ~ mpki_peak``
(insensitive to capacity) while cache-friendly workloads have a steep curve
with a small ``ways_scale``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import WorkloadError

#: Marker for foreground (latency-critical) workloads.
KIND_FG = "fg"
#: Marker for background (batch/throughput) workloads.
KIND_BG = "bg"


@dataclass(frozen=True)
class PhaseSpec:
    """One execution phase of a workload.

    Attributes:
        name: Human-readable phase label.
        instructions: Instructions retired in this phase (per execution
            for FG workloads; per loop iteration for BG workloads).
        base_cpi: Cycles per instruction absent any LLC miss.
        apki: LLC accesses per kilo-instruction; used as the occupancy
            weight when several processes share cache ways.
        mpki_floor: Misses per kilo-instruction with abundant cache.
        mpki_peak: Misses per kilo-instruction with nearly no cache.
        ways_scale: Exponential footprint scale of the miss curve, in
            ways; larger means the workload needs more cache to hit.
        mem_sensitivity: Multiplier on the loaded memory penalty; values
            below 1 model latency tolerance (prefetching, MLP).
    """

    name: str
    instructions: float
    base_cpi: float
    apki: float
    mpki_floor: float
    mpki_peak: float
    ways_scale: float
    mem_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise WorkloadError("phase %r: instructions must be > 0" % self.name)
        if self.base_cpi <= 0:
            raise WorkloadError("phase %r: base_cpi must be > 0" % self.name)
        if self.apki < 0:
            raise WorkloadError("phase %r: apki must be >= 0" % self.name)
        if self.mpki_floor < 0:
            raise WorkloadError("phase %r: mpki_floor must be >= 0" % self.name)
        if self.mpki_peak < self.mpki_floor:
            raise WorkloadError(
                "phase %r: mpki_peak must be >= mpki_floor" % self.name
            )
        if self.ways_scale <= 0:
            raise WorkloadError("phase %r: ways_scale must be > 0" % self.name)
        if self.mem_sensitivity < 0:
            raise WorkloadError(
                "phase %r: mem_sensitivity must be >= 0" % self.name
            )

    def mpki(self, ways: float) -> float:
        """Evaluate the miss curve at an effective allocation of ``ways``.

        ``ways`` may be fractional because partition occupancy is shared
        and inertia-filtered.  Negative values are clamped to zero.
        """
        w = max(0.0, ways)
        span = self.mpki_peak - self.mpki_floor
        return self.mpki_floor + span * math.exp(-w / self.ways_scale)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: an ordered tuple of phases plus metadata.

    Attributes:
        name: Unique workload name (e.g. ``"ferret"``).
        kind: ``"fg"`` for latency-critical tasks that run to completion
            repeatedly, ``"bg"`` for batch tasks that loop forever.
        phases: The phase program, executed in order (and cyclically for
            BG workloads).
        input_noise: Relative per-execution jitter applied to phase
            instruction counts of FG workloads, modeling input-dependent
            work (kept small; the paper studies externally caused
            variation).
        description: One-line description used in Table 1 style output.
    """

    name: str
    kind: str
    phases: Tuple[PhaseSpec, ...]
    input_noise: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (KIND_FG, KIND_BG):
            raise WorkloadError(
                "workload %r: kind must be 'fg' or 'bg', got %r"
                % (self.name, self.kind)
            )
        if not self.phases:
            raise WorkloadError("workload %r: needs at least one phase" % self.name)
        if not 0.0 <= self.input_noise < 0.5:
            raise WorkloadError(
                "workload %r: input_noise must be in [0, 0.5)" % self.name
            )
        # Precompute hot-path lookups (frozen dataclass, hence __setattr__).
        total = 0.0
        bounds = []
        for phase in self.phases:
            total += phase.instructions
            bounds.append(total)
        object.__setattr__(self, "_total_instructions", total)
        object.__setattr__(self, "_phase_boundaries", tuple(bounds))

    @property
    def is_foreground(self) -> bool:
        """True when this is a latency-critical (FG) workload."""
        return self.kind == KIND_FG

    @property
    def total_instructions(self) -> float:
        """Instructions in one pass over the phase program."""
        return self._total_instructions  # type: ignore[attr-defined]

    def phase_boundaries(self) -> Tuple[float, ...]:
        """Cumulative instruction counts at the end of each phase."""
        return self._phase_boundaries  # type: ignore[attr-defined]

    def phase_at(self, progress: float) -> PhaseSpec:
        """Return the phase active at ``progress`` instructions.

        Progress past the end of the program wraps around (BG loops);
        FG processes reset their progress per execution before this can
        matter.
        """
        if progress < 0:
            raise WorkloadError("progress must be >= 0")
        offset = progress % self.total_instructions if progress else 0.0
        for phase, bound in zip(self.phases, self.phase_boundaries()):
            if offset < bound:
                return phase
        return self.phases[-1]


def uniform_workload(
    name: str,
    kind: str,
    instructions: float,
    base_cpi: float,
    apki: float,
    mpki_floor: float,
    mpki_peak: float,
    ways_scale: float,
    mem_sensitivity: float = 1.0,
    input_noise: float = 0.0,
    description: str = "",
) -> WorkloadSpec:
    """Convenience constructor for a single-phase workload."""
    phase = PhaseSpec(
        name="%s.main" % name,
        instructions=instructions,
        base_cpi=base_cpi,
        apki=apki,
        mpki_floor=mpki_floor,
        mpki_peak=mpki_peak,
        ways_scale=ways_scale,
        mem_sensitivity=mem_sensitivity,
    )
    return WorkloadSpec(
        name=name,
        kind=kind,
        phases=(phase,),
        input_noise=input_noise,
        description=description,
    )
