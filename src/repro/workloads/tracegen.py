"""Synthetic workload generation.

The catalog in :mod:`repro.workloads.parsec` / ``background`` is
hand-calibrated to the paper's benchmarks.  This module generates *new*
phase-structured workloads programmatically — random batch jobs for
stress tests, or FG tasks with a desired standalone duration — so users
can explore beyond the paper's eleven benchmarks.

Generation is fully seeded and validated by construction: every produced
:class:`WorkloadSpec` satisfies the same invariants as the catalog.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import WorkloadError
from repro.workloads.spec import KIND_BG, KIND_FG, PhaseSpec, WorkloadSpec


@dataclass(frozen=True)
class GeneratorParams:
    """Ranges the generator draws phase parameters from.

    Attributes:
        min_phases / max_phases: Phase-count range.
        base_cpi_range: Compute CPI range.
        apki_heavy_range: LLC accesses/kilo-instruction in heavy phases.
        apki_light_range: ... in light phases.
        mpki_heavy_range: Miss floor range for heavy phases (the peak is
            drawn 1.2-2x above the floor).
        mpki_light_range: Miss floor range for light phases.
        ways_scale_range: Miss-curve footprint scale range.
        mem_sensitivity_range: Latency-sensitivity multiplier range.
        heavy_fraction: Probability a phase is memory-heavy.
    """

    min_phases: int = 2
    max_phases: int = 6
    base_cpi_range: tuple = (0.55, 1.05)
    apki_heavy_range: tuple = (30.0, 60.0)
    apki_light_range: tuple = (3.0, 10.0)
    mpki_heavy_range: tuple = (1.0, 3.0)
    mpki_light_range: tuple = (0.1, 0.6)
    ways_scale_range: tuple = (2.0, 7.0)
    mem_sensitivity_range: tuple = (0.5, 1.0)
    heavy_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 1 <= self.min_phases <= self.max_phases:
            raise WorkloadError("invalid phase-count range")
        if not 0.0 <= self.heavy_fraction <= 1.0:
            raise WorkloadError("heavy_fraction must be in [0, 1]")


class WorkloadGenerator:
    """Seeded generator of random phase-structured workloads."""

    def __init__(
        self, seed: int = 0, params: Optional[GeneratorParams] = None
    ) -> None:
        self._rng = random.Random("workload-gen/%d" % seed)
        self._params = params or GeneratorParams()
        self._counter = 0

    def _draw_phase(self, name: str, instructions: float) -> PhaseSpec:
        p = self._params
        rng = self._rng
        heavy = rng.random() < p.heavy_fraction
        apki_range = p.apki_heavy_range if heavy else p.apki_light_range
        mpki_range = p.mpki_heavy_range if heavy else p.mpki_light_range
        floor = rng.uniform(*mpki_range)
        return PhaseSpec(
            name=name,
            instructions=instructions,
            base_cpi=rng.uniform(*p.base_cpi_range),
            apki=rng.uniform(*apki_range),
            mpki_floor=floor,
            mpki_peak=floor * rng.uniform(1.2, 2.0),
            ways_scale=rng.uniform(*p.ways_scale_range),
            mem_sensitivity=rng.uniform(*p.mem_sensitivity_range),
        )

    def background(
        self,
        name: Optional[str] = None,
        total_instructions: float = 20e9,
    ) -> WorkloadSpec:
        """Generate one looping batch workload."""
        if total_instructions <= 0:
            raise WorkloadError("total_instructions must be positive")
        self._counter += 1
        name = name or "gen-bg-%d" % self._counter
        count = self._rng.randint(
            self._params.min_phases, self._params.max_phases
        )
        weights = [self._rng.uniform(0.5, 1.5) for _ in range(count)]
        scale = total_instructions / sum(weights)
        phases = tuple(
            self._draw_phase("%s.p%d" % (name, i), weight * scale)
            for i, weight in enumerate(weights)
        )
        return WorkloadSpec(name=name, kind=KIND_BG, phases=phases)

    def foreground(
        self,
        name: Optional[str] = None,
        target_standalone_s: float = 1.0,
        input_noise: float = 0.005,
    ) -> WorkloadSpec:
        """Generate one latency-critical task workload.

        The instruction budget is sized so the standalone execution time
        lands near ``target_standalone_s`` (within the model's accuracy)
        by accounting for each drawn phase's uncontended progress rate.
        """
        if target_standalone_s <= 0:
            raise WorkloadError("target_standalone_s must be positive")
        self._counter += 1
        name = name or "gen-fg-%d" % self._counter
        count = self._rng.randint(
            max(2, self._params.min_phases), self._params.max_phases
        )
        # Draw phases with placeholder sizes, then rescale to the target.
        weights = [self._rng.uniform(0.5, 1.5) for _ in range(count)]
        drafts = [
            self._draw_phase("%s.p%d" % (name, i), 1e9)
            for i in range(count)
        ]
        # Uncontended seconds per instruction at 2 GHz with ~85ns misses.
        def sec_per_instr(phase: PhaseSpec) -> float:
            stall_cycles = phase.mpki_floor / 1000.0 * 85.0 * (
                phase.mem_sensitivity
            ) * 2.0
            return (phase.base_cpi + stall_cycles) / 2e9

        unit_time = sum(
            w * sec_per_instr(d) for w, d in zip(weights, drafts)
        )
        scale = target_standalone_s / unit_time
        phases = tuple(
            PhaseSpec(
                name=d.name,
                instructions=w * scale,
                base_cpi=d.base_cpi,
                apki=d.apki,
                mpki_floor=d.mpki_floor,
                mpki_peak=d.mpki_peak,
                ways_scale=d.ways_scale,
                mem_sensitivity=d.mem_sensitivity,
            )
            for w, d in zip(weights, drafts)
        )
        return WorkloadSpec(
            name=name, kind=KIND_FG, phases=phases, input_noise=input_noise
        )
