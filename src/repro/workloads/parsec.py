"""Foreground workload catalog: PARSEC analogues.

The paper uses five PARSEC benchmarks with ``sim-medium`` inputs as FG
tasks (Table 1), spanning standalone completion times of roughly
0.5-1.6 s and a range of LLC miss intensities (Figure 4).  Each catalog
entry below is a phase program calibrated so the simulated standalone
execution time and MPKI land in the same ranges, with per-phase progress
rates that differ enough for the offline profiler's segment structure to
matter (the paper notes progress varies with instruction mix).

All FG specs carry a small ``input_noise`` so consecutive executions are
not byte-identical, but — as in the paper — nearly all task-to-task
variation comes from external interference, not the input.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.spec import KIND_FG, PhaseSpec, WorkloadSpec

#: One giga-instruction, the natural unit at ~2 GHz / IPC ~1.3.
GI = 1e9


def _phase(
    name: str,
    gi: float,
    base_cpi: float,
    apki: float,
    mpki_floor: float,
    mpki_peak: float,
    ways_scale: float,
    mem_sensitivity: float = 1.0,
) -> PhaseSpec:
    return PhaseSpec(
        name=name,
        instructions=gi * GI,
        base_cpi=base_cpi,
        apki=apki,
        mpki_floor=mpki_floor,
        mpki_peak=mpki_peak,
        ways_scale=ways_scale,
        mem_sensitivity=mem_sensitivity,
    )


BODYTRACK = WorkloadSpec(
    name="bodytrack",
    kind=KIND_FG,
    description="Body tracking of a person",
    input_noise=0.004,
    phases=(
        _phase("edge-detect", 0.34, 0.62, 6.0, 0.10, 1.2, 3.0),
        _phase("particle-weights", 0.30, 0.82, 10.0, 0.35, 2.0, 3.5),
        _phase("resample", 0.18, 0.70, 7.0, 0.15, 1.4, 3.0),
        _phase("particle-weights-2", 0.30, 0.82, 10.0, 0.35, 2.0, 3.5),
        _phase("annealing", 0.36, 0.66, 6.5, 0.12, 1.2, 3.0),
    ),
)

FERRET = WorkloadSpec(
    name="ferret",
    kind=KIND_FG,
    description="Content similarity search",
    input_noise=0.005,
    phases=(
        _phase("segment", 0.40, 0.72, 9.0, 0.20, 1.8, 3.5),
        _phase("extract", 0.46, 0.66, 8.0, 0.18, 1.6, 3.0),
        _phase("index-probe", 0.52, 0.92, 18.0, 0.60, 3.4, 4.5),
        _phase("rank", 0.50, 0.78, 12.0, 0.35, 2.4, 4.0),
        _phase("aggregate", 0.28, 0.70, 8.0, 0.20, 1.6, 3.0),
    ),
)

FLUIDANIMATE = WorkloadSpec(
    name="fluidanimate",
    kind=KIND_FG,
    description="Fluid dynamics for animation",
    input_noise=0.004,
    phases=(
        _phase("rebuild-grid", 0.22, 0.74, 11.0, 0.30, 2.0, 3.5),
        _phase("compute-forces", 0.52, 0.60, 7.0, 0.15, 1.5, 3.0),
        _phase("collisions", 0.26, 0.68, 9.0, 0.22, 1.8, 3.2),
        _phase("advance-particles", 0.34, 0.64, 8.0, 0.18, 1.5, 3.0),
    ),
)

RAYTRACE = WorkloadSpec(
    name="raytrace",
    kind=KIND_FG,
    description="Real-time raytracing",
    input_noise=0.005,
    phases=(
        _phase("build-bvh", 0.55, 0.84, 12.0, 0.30, 2.2, 5.0),
        _phase("primary-rays", 1.05, 0.72, 8.0, 0.15, 1.6, 4.5),
        _phase("shadow-rays", 0.85, 0.78, 10.0, 0.22, 1.9, 4.5),
        _phase("shading", 0.90, 0.68, 7.0, 0.12, 1.4, 4.0),
        _phase("postprocess", 0.35, 0.62, 6.0, 0.10, 1.1, 3.0),
    ),
)

STREAMCLUSTER = WorkloadSpec(
    name="streamcluster",
    kind=KIND_FG,
    description="Online clustering of an input stream",
    input_noise=0.006,
    phases=(
        _phase("stream-in", 0.35, 0.58, 26.0, 0.90, 7.8, 2.6),
        _phase("pgain-1", 0.60, 0.56, 22.0, 0.75, 7.0, 2.6),
        _phase("shuffle", 0.25, 0.62, 28.0, 1.10, 8.6, 2.8),
        _phase("pgain-2", 0.60, 0.56, 22.0, 0.75, 7.0, 2.6),
        _phase("contract", 0.40, 0.60, 24.0, 0.85, 7.4, 2.6),
    ),
)

#: Name -> spec mapping of all FG workloads, in the paper's Table 1 order.
FOREGROUND_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (BODYTRACK, FERRET, FLUIDANIMATE, RAYTRACE, STREAMCLUSTER)
}

#: FG names in the paper's Table 1 order.
FOREGROUND_NAMES: Tuple[str, ...] = tuple(FOREGROUND_WORKLOADS)
