"""Reproduction of Dirigent (Zhu & Erez, ASPLOS 2016).

Dirigent is a lightweight performance-management runtime that enforces
QoS for latency-critical (foreground) tasks collocated with batch
(background) tasks on a shared multicore node, by predicting task
completion times at millisecond granularity and steering per-core DVFS,
task pausing, and LLC way-partitioning.

This package contains:

* :mod:`repro.core` — the Dirigent runtime itself (offline profiler,
  online completion-time predictor, fine and coarse time scale
  controllers), written against an OS/hardware abstraction.
* :mod:`repro.sim` — a simulated 6-core machine substrate standing in
  for the paper's Xeon E5-2618L v3 testbed.
* :mod:`repro.workloads` — phase-structured synthetic analogues of the
  paper's PARSEC / SPEC / MLPack workloads.
* :mod:`repro.experiments` — the evaluation harness and one driver per
  paper figure.

Quickstart::

    from repro.experiments import mix_by_name, run_policy, measure_baseline
    from repro.core import DIRIGENT

    mix = mix_by_name("ferret rs")
    baseline = measure_baseline(mix, executions=20)
    managed = run_policy(mix, DIRIGENT, executions=20)
    print(managed.fg_success_ratio, managed.bg_instr_per_s / baseline.bg_instr_per_s)
"""

from repro.core import (
    BASELINE,
    DIRIGENT,
    DIRIGENT_FREQ,
    PAPER_POLICIES,
    STATIC_BOTH,
    STATIC_FREQ,
    CompletionTimePredictor,
    DirigentRuntime,
    ExecutionProfile,
    ManagedTask,
    OfflineProfiler,
    Policy,
    RuntimeOptions,
)
from repro.errors import (
    ConfigurationError,
    ControlError,
    ExperimentError,
    ProfileError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.sim import Machine, MachineConfig, SystemInterface
from repro.workloads import PhaseSpec, WorkloadSpec, get_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Machine",
    "MachineConfig",
    "SystemInterface",
    "OfflineProfiler",
    "ExecutionProfile",
    "CompletionTimePredictor",
    "DirigentRuntime",
    "ManagedTask",
    "RuntimeOptions",
    "Policy",
    "PAPER_POLICIES",
    "BASELINE",
    "STATIC_FREQ",
    "STATIC_BOTH",
    "DIRIGENT_FREQ",
    "DIRIGENT",
    "PhaseSpec",
    "WorkloadSpec",
    "get_workload",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "WorkloadError",
    "ProfileError",
    "ControlError",
    "ExperimentError",
]
